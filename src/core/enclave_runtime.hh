/**
 * @file
 * mEnclave execution models (§IV-A).
 *
 * An mEnclave is a black-box executor <mECalls, state>. The
 * *execution model* defines how an image is loaded and how mECalls
 * run: a CPU mEnclave executes functions from a dynamic-library-like
 * image, a CUDA mEnclave executes a CUDA ELF through the GPU HAL,
 * an NPU mEnclave executes VTA programs through the NPU HAL.
 */

#ifndef CRONUS_CORE_ENCLAVE_RUNTIME_HH
#define CRONUS_CORE_ENCLAVE_RUNTIME_HH

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "accel/npu.hh"
#include "mos/cpu_hal.hh"
#include "mos/gpu_hal.hh"
#include "mos/npu_hal.hh"

namespace cronus::core
{

/** Common interface of all execution models. */
class EnclaveRuntime
{
  public:
    virtual ~EnclaveRuntime() = default;

    /** "cpu-libos" | "cuda" | "vta" */
    virtual std::string executionModel() const = 0;

    /** Parse and load the mEnclave image (me_create). */
    virtual Status meCreate(const Bytes &image) = 0;

    /**
     * Create an *unbound shell*: allocate the device context (the
     * expensive part of me_create) without loading a module. mECalls
     * fail with InvalidState until meBind() attaches an image. Warm
     * pools pre-create shells so instantiation is a bind, not a
     * full create (§IV-A cold-start amortization).
     */
    virtual Status
    meCreateShell()
    {
        return Status(ErrorCode::Unsupported,
                      "execution model has no shell support");
    }

    /**
     * Bind (or rebind) a module image onto a created shell. Rebind
     * is allowed within one owner's trust domain: the manager swaps
     * the manifest at the same time, so only the newly bound
     * module's mECalls remain callable.
     */
    virtual Status
    meBind(const Bytes &image)
    {
        (void)image;
        return Status(ErrorCode::Unsupported,
                      "execution model has no bind support");
    }

    /** Whether a module is currently bound (shells start unbound). */
    virtual bool bound() const { return true; }

    /** Execute one mECall against internal state. */
    virtual Result<Bytes> meCall(const std::string &fn,
                                 const Bytes &args) = 0;

    /** Tear down; @p scrub additionally clears device state. */
    virtual Status meDestroy(bool scrub) = 0;

    /**
     * Serialize the executor's internal state (checkpointing
     * support, §III-B: applications may integrate data-recovery
     * techniques; the sealed form lets an owner restore state into
     * a fresh enclave after a partition failure). Unsupported by
     * default.
     */
    virtual Result<Bytes>
    meSnapshot()
    {
        return Status(ErrorCode::Unsupported,
                      "execution model has no snapshot support");
    }

    virtual Status
    meRestore(const Bytes &snapshot)
    {
        (void)snapshot;
        return Status(ErrorCode::Unsupported,
                      "execution model has no restore support");
    }
};

/* ------------------------------------------------------------------ */
/* CPU execution model                                                 */
/* ------------------------------------------------------------------ */

/** Call context handed to CPU enclave functions. */
struct CpuCallContext
{
    const Bytes &args;
    /** Enclave-private key/value state (the executor's `state`). */
    std::map<std::string, Bytes> &store;
    /** Charge @p units of CPU work to the virtual clock. */
    std::function<Status(uint64_t)> charge;
};

using CpuFunction = std::function<Result<Bytes>(CpuCallContext &)>;

/**
 * Registry of host-compiled functions standing in for the contents
 * of CPU mEnclave dynamic libraries. An image names the functions it
 * exports (like a .so's symbol table).
 */
class CpuFunctionRegistry
{
  public:
    static CpuFunctionRegistry &instance();

    /**
     * Install a function body. First registration of a name wins;
     * re-registering is a no-op. That keeps lazy has()-then-register
     * initialization safe when concurrent fuzz --jobs seeds race to
     * install the same body, and means a pointer returned by find()
     * is never replaced under a running call.
     */
    void registerFunction(const std::string &name, CpuFunction fn);
    const CpuFunction *find(const std::string &name) const;
    bool has(const std::string &name) const;

  private:
    mutable std::shared_mutex mu;
    std::map<std::string, CpuFunction> functions;
};

/** Serialized CPU image: list of exported function names. */
struct CpuImage
{
    std::vector<std::string> exports;

    Bytes serialize() const;
    static Result<CpuImage> deserialize(const Bytes &data);
};

class CpuRuntime : public EnclaveRuntime
{
  public:
    explicit CpuRuntime(mos::CpuHal &hal) : cpuHal(hal) {}

    std::string executionModel() const override { return "cpu-libos"; }
    Status meCreate(const Bytes &image) override;
    Status meCreateShell() override;
    Status meBind(const Bytes &image) override;
    bool bound() const override { return moduleBound; }
    Result<Bytes> meCall(const std::string &fn,
                         const Bytes &args) override;
    Status meDestroy(bool scrub) override;
    Result<Bytes> meSnapshot() override;
    Status meRestore(const Bytes &snapshot) override;

  private:
    mos::CpuHal &cpuHal;
    uint64_t deviceCtx = 0;
    bool created = false;
    bool moduleBound = false;
    std::set<std::string> exports;
    std::map<std::string, Bytes> store;
};

/* ------------------------------------------------------------------ */
/* CUDA execution model                                                */
/* ------------------------------------------------------------------ */

/**
 * CUDA mEnclave: the image is a cubin (GpuModuleImage); mECalls are
 * the CUDA driver API surface. Argument encodings (little-endian,
 * via ByteWriter) are provided as static helpers so callers and the
 * runtime cannot drift apart.
 */
class CudaRuntime : public EnclaveRuntime
{
  public:
    explicit CudaRuntime(mos::GpuHal &hal) : gpuHal(hal) {}

    std::string executionModel() const override { return "cuda"; }
    Status meCreate(const Bytes &image) override;
    Status meCreateShell() override;
    Status meBind(const Bytes &image) override;
    bool bound() const override { return moduleBound; }
    Result<Bytes> meCall(const std::string &fn,
                         const Bytes &args) override;
    Status meDestroy(bool scrub) override;
    Result<Bytes> meSnapshot() override;
    Status meRestore(const Bytes &snapshot) override;

    /* --- argument codecs --- */
    static Bytes encodeMemAlloc(uint64_t bytes);
    static Bytes encodeMemFree(uint64_t va);
    static Bytes encodeMemcpyHtoD(uint64_t va, const Bytes &data);
    static Bytes encodeMemcpyDtoH(uint64_t va, uint64_t len);
    static Bytes encodeLaunchKernel(const std::string &kernel,
                                    const std::vector<uint64_t> &args,
                                    uint64_t work_items);
    static Result<uint64_t> decodeU64Result(const Bytes &result);

    /** The set of mECalls this model understands. */
    static const std::vector<std::string> &apiSurface();

  private:
    mos::GpuHal &gpuHal;
    uint64_t deviceCtx = 0;
    bool created = false;
    bool moduleBound = false;
};

/* ------------------------------------------------------------------ */
/* NPU (VTA) execution model                                           */
/* ------------------------------------------------------------------ */

/** Serialize/deserialize NPU programs for vtaRun's argument. */
Bytes serializeNpuProgram(const accel::NpuProgram &program);
Result<accel::NpuProgram> deserializeNpuProgram(const Bytes &data);

class NpuRuntime : public EnclaveRuntime
{
  public:
    explicit NpuRuntime(mos::NpuHal &hal) : npuHal(hal) {}

    std::string executionModel() const override { return "vta"; }
    Status meCreate(const Bytes &image) override;
    Status meCreateShell() override;
    Status meBind(const Bytes &image) override;
    Result<Bytes> meCall(const std::string &fn,
                         const Bytes &args) override;
    Status meDestroy(bool scrub) override;

    /* --- argument codecs --- */
    static Bytes encodeAllocBuffer(uint64_t bytes);
    static Bytes encodeWriteBuffer(uint32_t buffer, uint64_t offset,
                                   const Bytes &data);
    static Bytes encodeReadBuffer(uint32_t buffer, uint64_t offset,
                                  uint64_t len);
    static Bytes encodeRun(const accel::NpuProgram &program);

    static const std::vector<std::string> &apiSurface();

  private:
    mos::NpuHal &npuHal;
    uint64_t deviceCtx = 0;
    bool created = false;
};

} // namespace cronus::core

#endif // CRONUS_CORE_ENCLAVE_RUNTIME_HH
