/**
 * @file
 * Remote attestation (§IV-A).
 *
 * CRONUS extends two-phase attestation to a dynamically configured
 * TEE platform: a client verifies a *closure* of hardware and
 * software state -- the device tree, the mOS hash, the mEnclave
 * hash and the accelerator's hardware key (PubK_acc) -- signed by
 * the platform attestation key AtK, which is itself endorsed by the
 * platform root of trust. The accelerator key must additionally be
 * endorsed by its hardware vendor, defeating fabricated devices.
 */

#ifndef CRONUS_CORE_ATTESTATION_HH
#define CRONUS_CORE_ATTESTATION_HH

#include "hw/root_of_trust.hh"
#include "micro_enclave.hh"

namespace cronus::core
{

/** The report body the secure monitor signs. */
struct AttestationReport
{
    Eid eid = 0;
    crypto::Digest enclaveMeasurement{};
    crypto::Digest mosMeasurement{};
    crypto::Digest dtMeasurement{};
    Bytes devicePublicKey;        ///< PubK_acc
    crypto::Signature deviceConfigSig;  ///< device RoT over config
    Bytes challenge;

    Bytes serialize() const;
};

/** Report + the AtK signature chain. */
struct SignedAttestationReport
{
    AttestationReport report;
    crypto::Signature reportSignature;   ///< by AtK
    Bytes atkPublicKey;
    crypto::Signature atkEndorsement;    ///< by platform RoT

    /** Wire form: what actually travels to the remote client. */
    Bytes toWire() const;
    static Result<SignedAttestationReport> fromWire(
        const Bytes &wire);
};

/**
 * Produce the signed report for @p eid hosted by @p os. The HAL
 * first verifies hardware authenticity with @p challenge.
 */
Result<SignedAttestationReport> attestEnclave(MicroOS &os, Eid eid,
                                              const Bytes &challenge);

/** What a remote client expects the platform to prove. */
struct ClientExpectation
{
    crypto::PublicKey platformRoot;   ///< trusted RoT / attestation
                                      ///< service key
    crypto::Digest expectedEnclave{};
    crypto::Digest expectedMos{};
    crypto::Digest expectedDt{};
    /** Vendor key + endorsement of the device RoT key. */
    crypto::PublicKey vendorKey;
    crypto::Signature deviceEndorsement;
    Bytes challenge;
};

/**
 * Client-side verification: checks the full chain
 * RoT -> AtK -> report, the measurements, the challenge freshness
 * and the vendor endorsement of PubK_acc.
 */
Status verifyAttestation(const SignedAttestationReport &signed_report,
                         const ClientExpectation &expect);

} // namespace cronus::core

#endif // CRONUS_CORE_ATTESTATION_HH
