#include "pipe.hh"

#include "base/logging.hh"

namespace cronus::core
{

namespace
{

constexpr uint64_t kMagicOff = 0x00;
constexpr uint64_t kHeadOff = 0x08;
constexpr uint64_t kTailOff = 0x10;
constexpr uint64_t kClosedOff = 0x18;
constexpr uint64_t kDcheckOff = 0x20;
constexpr uint64_t kDataOff = 0x40;
constexpr uint64_t kPipeMagic = 0x50495045e3e3e3e3ull;

Bytes
u64Bytes(uint64_t v)
{
    ByteWriter w;
    w.putU64(v);
    return w.take();
}

uint64_t
u64From(const Bytes &b)
{
    ByteReader r(b);
    return r.getU64().value();
}

} // namespace

Result<std::unique_ptr<SharedPipe>>
SharedPipe::create(MicroOS &writer_os, Eid writer_eid,
                   MicroOS &reader_os, Eid reader_eid,
                   const Bytes &secret, const PipeConfig &config)
{
    std::unique_ptr<SharedPipe> pipe(
        new SharedPipe(writer_os, reader_os, config));
    CRONUS_RETURN_IF_ERROR(
        pipe->setup(writer_eid, reader_eid, secret));
    return pipe;
}

Status
SharedPipe::setup(Eid writer_eid, Eid reader_eid,
                  const Bytes &secret)
{
    (void)writer_eid;
    tee::Spm &spm = writerOs.spm();

    uint64_t bytes = hw::pageAlignUp(kDataOff + cfg.capacity);
    cfg.capacity = bytes - kDataOff;
    auto region =
        writerOs.shimKernel().allocPages(bytes / hw::kPageSize);
    if (!region.isOk())
        return region.status();
    base = region.value();

    auto grant_id = spm.sharePages(writerOs.partitionId(),
                                   readerOs.partitionId(), base,
                                   bytes / hw::kPageSize);
    if (!grant_id.isOk())
        return grant_id.status();
    grant = grant_id.value();

    CRONUS_RETURN_IF_ERROR(spm.write(writerOs.partitionId(),
                                     base + kMagicOff,
                                     u64Bytes(kPipeMagic)));
    CRONUS_RETURN_IF_ERROR(spm.write(writerOs.partitionId(),
                                     base + kHeadOff, u64Bytes(0)));
    CRONUS_RETURN_IF_ERROR(spm.write(writerOs.partitionId(),
                                     base + kTailOff, u64Bytes(0)));
    CRONUS_RETURN_IF_ERROR(spm.write(writerOs.partitionId(),
                                     base + kClosedOff, Bytes{0}));

    /* dCheck through the pipe itself: the reader enclave proves it
     * holds secret_dhke (same defense as sRPC setup). */
    auto reader = readerOs.enclaveManager().enclave(reader_eid);
    if (!reader.isOk())
        return reader.status();
    ByteWriter input;
    input.putString("pipe-dcheck");
    input.putU64(grant);
    input.putU32(reader_eid);
    Bytes reader_tag = crypto::digestToBytes(crypto::hmacSha256(
        reader.value()->secret(), input.data()));
    CRONUS_RETURN_IF_ERROR(spm.write(readerOs.partitionId(),
                                     base + kDcheckOff, reader_tag));

    Bytes expected = crypto::digestToBytes(
        crypto::hmacSha256(secret, input.data()));
    auto observed =
        spm.read(writerOs.partitionId(), base + kDcheckOff, 32);
    if (!observed.isOk())
        return observed.status();
    if (!constantTimeEqual(observed.value(), expected))
        return Status(ErrorCode::AuthFailed, "pipe dCheck failed");
    return Status::ok();
}

Result<uint64_t>
SharedPipe::readCounter(uint64_t off, bool reader_side)
{
    tee::Spm &spm = writerOs.spm();
    auto pid = reader_side ? readerOs.partitionId()
                           : writerOs.partitionId();
    auto v = spm.read(pid, base + off, 8);
    if (!v.isOk()) {
        if (v.code() == ErrorCode::PeerFailed ||
            v.code() == ErrorCode::InvalidState) {
            peerFailed = true;
            return Status(ErrorCode::PeerFailed,
                          "pipe peer partition down");
        }
        return v.status();
    }
    return u64From(v.value());
}

Status
SharedPipe::writeCounter(uint64_t off, uint64_t value,
                         bool reader_side)
{
    tee::Spm &spm = writerOs.spm();
    auto pid = reader_side ? readerOs.partitionId()
                           : writerOs.partitionId();
    Status s = spm.write(pid, base + off, u64Bytes(value));
    if (s.code() == ErrorCode::PeerFailed ||
        s.code() == ErrorCode::InvalidState) {
        peerFailed = true;
        return Status(ErrorCode::PeerFailed,
                      "pipe peer partition down");
    }
    return s;
}

Result<uint64_t>
SharedPipe::write(const Bytes &data)
{
    if (peerFailed)
        return Status(ErrorCode::PeerFailed, "pipe peer failed");
    if (writeClosed)
        return Status(ErrorCode::InvalidState, "write end closed");

    auto remote_tail = readCounter(kTailOff, false);
    if (!remote_tail.isOk())
        return remote_tail.status();
    tail = remote_tail.value();

    uint64_t free_bytes = cfg.capacity - (head - tail);
    uint64_t n = std::min<uint64_t>(free_bytes, data.size());
    tee::Spm &spm = writerOs.spm();
    hw::Platform &plat = spm.monitor().platform();
    for (uint64_t i = 0; i < n;) {
        uint64_t pos = (head + i) % cfg.capacity;
        uint64_t run = std::min(n - i, cfg.capacity - pos);
        Bytes piece(data.begin() + i, data.begin() + i + run);
        Status s = spm.write(writerOs.partitionId(),
                             base + kDataOff + pos, piece);
        if (!s.isOk()) {
            if (s.code() == ErrorCode::PeerFailed ||
                s.code() == ErrorCode::InvalidState)
                peerFailed = true;
            return s;
        }
        i += run;
    }
    plat.chargeMemcpy(n);
    head += n;
    CRONUS_RETURN_IF_ERROR(writeCounter(kHeadOff, head, false));
    return n;
}

Result<Bytes>
SharedPipe::read(uint64_t max)
{
    if (peerFailed)
        return Status(ErrorCode::PeerFailed, "pipe peer failed");
    auto remote_head = readCounter(kHeadOff, true);
    if (!remote_head.isOk())
        return remote_head.status();
    uint64_t visible_head = remote_head.value();

    uint64_t pending = visible_head - tail;
    uint64_t n = std::min(pending, max);
    Bytes out;
    out.reserve(n);
    tee::Spm &spm = readerOs.spm();
    hw::Platform &plat = spm.monitor().platform();
    for (uint64_t i = 0; i < n;) {
        uint64_t pos = (tail + i) % cfg.capacity;
        uint64_t run = std::min(n - i, cfg.capacity - pos);
        auto piece = spm.read(readerOs.partitionId(),
                              base + kDataOff + pos, run);
        if (!piece.isOk()) {
            if (piece.code() == ErrorCode::PeerFailed ||
                piece.code() == ErrorCode::InvalidState)
                peerFailed = true;
            return piece.status();
        }
        out.insert(out.end(), piece.value().begin(),
                   piece.value().end());
        i += run;
    }
    plat.chargeMemcpy(n);
    tail += n;
    CRONUS_RETURN_IF_ERROR(writeCounter(kTailOff, tail, true));
    return out;
}

Result<uint64_t>
SharedPipe::available()
{
    auto remote_head = readCounter(kHeadOff, true);
    if (!remote_head.isOk())
        return remote_head.status();
    return remote_head.value() - tail;
}

Status
SharedPipe::closeWrite()
{
    if (writeClosed)
        return Status(ErrorCode::InvalidState, "already closed");
    writeClosed = true;
    tee::Spm &spm = writerOs.spm();
    return spm.write(writerOs.partitionId(), base + kClosedOff,
                     Bytes{1});
}

Result<bool>
SharedPipe::endOfStream()
{
    tee::Spm &spm = readerOs.spm();
    auto closed =
        spm.read(readerOs.partitionId(), base + kClosedOff, 1);
    if (!closed.isOk()) {
        if (closed.code() == ErrorCode::PeerFailed ||
            closed.code() == ErrorCode::InvalidState)
            peerFailed = true;
        return closed.status();
    }
    if (closed.value()[0] == 0)
        return false;
    auto pending = available();
    if (!pending.isOk())
        return pending.status();
    return pending.value() == 0;
}

} // namespace cronus::core
