/**
 * @file
 * SharedPipe: a byte-stream pipe between mEnclaves over trusted
 * shared memory.
 *
 * §IV-C notes that, beyond RPC, trusted shared memory supports other
 * inter-enclave communication (pipes, peer-to-peer transfers). This
 * is that pipe: a single-producer single-consumer ring whose ends
 * live in different partitions. It shares sRPC's security
 * foundations -- the region is an SPM grant (share-once),
 * authenticated by a dCheck derived from the consumer enclave's
 * ownership secret, and a partition failure turns the next access
 * into a trap that surfaces as PeerFailed (crash safety per §IV-D;
 * the *application* handles data recovery, e.g. via checkpoints).
 */

#ifndef CRONUS_CORE_PIPE_HH
#define CRONUS_CORE_PIPE_HH

#include <memory>

#include "micro_enclave.hh"

namespace cronus::core
{

struct PipeConfig
{
    /** Data capacity in bytes (rounded up to whole pages). */
    uint64_t capacity = 64 * 1024;
};

class SharedPipe
{
  public:
    /**
     * Create a pipe from @p writer_eid (hosted by @p writer_os,
     * which owns the backing pages) to @p reader_eid. @p secret is
     * secret_dhke between the writer (owner/creator of the reader
     * enclave) and the reader enclave, used for the dCheck.
     */
    static Result<std::unique_ptr<SharedPipe>> create(
        MicroOS &writer_os, Eid writer_eid, MicroOS &reader_os,
        Eid reader_eid, const Bytes &secret,
        const PipeConfig &config = PipeConfig());

    /**
     * Write up to capacity; returns bytes accepted (0 if full).
     * PeerFailed if the reader's partition died.
     */
    Result<uint64_t> write(const Bytes &data);

    /** Read up to @p max bytes (possibly 0 if empty). */
    Result<Bytes> read(uint64_t max);

    /** Bytes currently buffered. */
    Result<uint64_t> available();

    /** Writer signals end-of-stream. */
    Status closeWrite();
    /** True once the writer closed and the buffer drained. */
    Result<bool> endOfStream();

    uint64_t grantId() const { return grant; }
    bool failed() const { return peerFailed; }

  private:
    SharedPipe(MicroOS &writer_os, MicroOS &reader_os,
               const PipeConfig &config)
        : writerOs(writer_os), readerOs(reader_os), cfg(config) {}

    Status setup(Eid writer_eid, Eid reader_eid,
                 const Bytes &secret);
    Result<uint64_t> readCounter(uint64_t off, bool reader_side);
    Status writeCounter(uint64_t off, uint64_t value,
                        bool reader_side);

    MicroOS &writerOs;
    MicroOS &readerOs;
    PipeConfig cfg;
    tee::PhysAddr base = 0;
    uint64_t grant = 0;
    uint64_t head = 0;  ///< writer position (bytes, monotonic)
    uint64_t tail = 0;  ///< reader position (bytes, monotonic)
    bool writeClosed = false;
    bool peerFailed = false;
};

} // namespace cronus::core

#endif // CRONUS_CORE_PIPE_HH
