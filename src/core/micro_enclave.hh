/**
 * @file
 * MicroEnclave, Enclave Manager and MicroOS (§IV-A).
 *
 * The Enclave Manager runs inside each mOS: it loads and initializes
 * mEnclaves from manifests (verifying image hashes), allocates eids
 * (8-bit mOS id + 24-bit enclave id), derives the per-enclave
 * ownership secret via Diffie-Hellman, authenticates mECall
 * invocations arriving over the untrusted path, keeps resource
 * books, and answers local-attestation requests.
 *
 * MicroOS aggregates the Enclave Manager with the HAL and the shim
 * kernel for one partition.
 */

#ifndef CRONUS_CORE_MICRO_ENCLAVE_HH
#define CRONUS_CORE_MICRO_ENCLAVE_HH

#include <memory>

#include "eid.hh"
#include "enclave_runtime.hh"
#include "manifest.hh"
#include "module_store.hh"
#include "tee/normal_world.hh"

namespace cronus::core
{

/** One loaded mEnclave. */
class MicroEnclave
{
  public:
    MicroEnclave(Eid enclave_id, Manifest mf,
                 crypto::Digest image_hash,
                 std::unique_ptr<EnclaveRuntime> rt,
                 Bytes secret, crypto::PublicKey owner)
        : eid(enclave_id), manifest(std::move(mf)),
          measurement(image_hash), runtime(std::move(rt)),
          secretDhke(std::move(secret)), ownerPub(owner) {}

    Eid id() const { return eid; }
    const Manifest &manifestOf() const { return manifest; }
    const crypto::Digest &measure() const { return measurement; }
    const Bytes &secret() const { return secretDhke; }
    const crypto::PublicKey &owner() const { return ownerPub; }

    /** Execute a declared mECall. */
    Result<Bytes> invoke(const std::string &fn, const Bytes &args);

    bool isAsync(const std::string &fn) const
    {
        return manifest.isAsync(fn);
    }

    Status destroy(bool scrub) { return runtime->meDestroy(scrub); }

    /**
     * Bind a module onto this enclave (manager-mediated): attach the
     * image to the runtime, then swap manifest + measurement so the
     * attested identity and the callable mECall surface change
     * together. Used for shells and for rebinding pooled enclaves.
     */
    Status bind(const Manifest &mf, const crypto::Digest &meas,
                const Bytes &image);

    /** Whether a module is bound (shells start unbound). */
    bool isBound() const { return runtime->bound(); }

    /** Raw state snapshot/restore (sealed by the EnclaveManager). */
    Result<Bytes> snapshot() { return runtime->meSnapshot(); }
    Status restoreState(const Bytes &s)
    {
        return runtime->meRestore(s);
    }

  private:
    Eid eid;
    Manifest manifest;
    crypto::Digest measurement;
    std::unique_ptr<EnclaveRuntime> runtime;
    Bytes secretDhke;
    crypto::PublicKey ownerPub;
    /* One-entry declaresCall() memo for the streaming mECall hot
     * path. Sound because the manifest is part of the attested
     * identity and never changes after creation. */
    std::string lastDeclaredFn;
};

class MicroOS;

/** Result of a create(): what the owner needs to proceed. */
struct EnclaveCreated
{
    Eid eid = 0;
    /** Enclave-side DH public key; the owner combines it with its
     *  private key to derive secret_dhke. */
    crypto::PublicKey enclavePub;
};

/** A local attestation report (§IV-A), MACed with the SM's LSK. */
struct LocalAttestationReport
{
    Eid eid = 0;
    uint64_t partitionIncarnation = 0;
    crypto::Digest enclaveMeasurement{};
    crypto::Digest mosMeasurement{};
    Bytes challenge;
    /** HMAC(LSK, all of the above). */
    Bytes mac;

    Bytes macInput() const;
};

class EnclaveManager
{
  public:
    explicit EnclaveManager(MicroOS &os);

    /**
     * Create an mEnclave. @p manifest_json and @p image come from
     * the (untrusted) caller; the image hash is checked against the
     * manifest entry named @p image_name. @p owner_pub is the
     * caller's DH public key; the caller of create becomes the
     * enclave's owner.
     */
    Result<EnclaveCreated> create(const std::string &manifest_json,
                                  const std::string &image_name,
                                  const Bytes &image,
                                  const crypto::PublicKey &owner_pub);

    /**
     * Create an mEnclave from a module-store record. The record's
     * manifest was parsed and its image verified and measured at
     * admission, so this path skips the parse, the hash check and
     * the measurement SHA -- the cache win the module store exists
     * for. Everything else (admission, DH ownership, runtime
     * creation, books) matches create() exactly.
     */
    Result<EnclaveCreated> createFromRecord(
        const ModuleRecord &record,
        const crypto::PublicKey &owner_pub);

    /**
     * Create an *unbound shell*: device context and DH ownership
     * only, no module. The shell reserves @p mem_bytes against the
     * partition budget (re-checked at bind when the module's quota
     * differs). Warm pools pre-create and pre-attest shells so a
     * request-time instantiation is a bind, not a create.
     */
    Result<EnclaveCreated> createShell(
        const crypto::PublicKey &owner_pub, uint64_t mem_bytes);

    /**
     * Owner-authenticated bind of a cached module onto a shell (or
     * rebind of a pooled enclave): @p tag =
     * HMAC(secret_dhke, eid||nonce||"bind"||digest). Swaps manifest
     * and measurement to the record's and adjusts the memory books;
     * admission is re-checked against the record's quota.
     */
    Status bindModule(Eid eid, const ModuleRecord &record,
                      uint64_t nonce, const Bytes &tag);

    /**
     * mECall over the untrusted path. The request must be
     * authenticated: @p tag = HMAC(secret_dhke, eid||nonce||fn||args)
     * with a strictly increasing @p nonce (anti-replay).
     */
    Result<Bytes> ecall(Eid eid, const std::string &fn,
                        const Bytes &args, uint64_t nonce,
                        const Bytes &tag);

    /** Compute the tag the untrusted path requires (owner side). */
    static Bytes authTag(const Bytes &secret, Eid eid, uint64_t nonce,
                         const std::string &fn, const Bytes &args);

    /**
     * mECall over a pre-authenticated channel (sRPC executor after
     * dCheck). Bypasses the per-call HMAC.
     */
    Result<Bytes> invokeLocal(Eid eid, const std::string &fn,
                              const Bytes &args);

    /** Generate a local-attestation report for @p eid. */
    Result<LocalAttestationReport> localAttest(Eid eid,
                                               const Bytes &challenge);

    /** Verify a report produced on the same machine. */
    static bool verifyLocalReport(const LocalAttestationReport &report,
                                  const Bytes &lsk);

    Status destroy(Eid eid, uint64_t nonce, const Bytes &tag);

    /**
     * Owner-authenticated checkpoint: serialize the enclave's state
     * and seal it with secret_dhke, so only the owner can restore
     * it -- including into a *fresh* enclave after a partition
     * failure (application-data recovery, §III-B).
     */
    Result<Bytes> checkpoint(Eid eid, uint64_t nonce,
                             const Bytes &tag);

    /** Owner-authenticated restore of a sealed checkpoint. */
    Status restore(Eid eid, uint64_t nonce, const Bytes &tag,
                   const Bytes &sealed);

    Result<const MicroEnclave *> enclave(Eid eid) const;
    Result<MicroEnclave *> enclaveMutable(Eid eid);
    size_t enclaveCount() const { return enclaves.size(); }

    /** Memory bookkeeping. */
    uint64_t memoryInUse() const { return memUsed; }

  private:
    Result<std::unique_ptr<EnclaveRuntime>> makeRuntime(
        const std::string &device_type);

    MicroOS &mos;
    std::map<Eid, std::unique_ptr<MicroEnclave>> enclaves;
    std::map<Eid, uint64_t> lastNonce;
    std::map<Eid, uint64_t> memQuota;
    uint32_t nextEnclaveId = 1;
    uint64_t memUsed = 0;
};

/**
 * One MicroOS: shim kernel + HAL + Enclave Manager for a partition.
 */
class MicroOS
{
  public:
    /**
     * @p device_type picks the HAL ("cpu"|"gpu"|"npu"); the HAL
     * drives @p device_name through the shim kernel.
     */
    MicroOS(tee::Spm &spm, tee::PartitionId pid,
            const std::string &device_type,
            const std::string &device_name);

    tee::PartitionId partitionId() const { return pid; }
    const std::string &deviceType() const { return devType; }
    const std::string &deviceName() const { return devName; }

    mos::ShimKernel &shimKernel() { return shim; }
    mos::Hal &hal() { return *halImpl; }
    EnclaveManager &enclaveManager() { return *manager; }

    /** The partition's current mOS measurement (from the SPM). */
    Result<crypto::Digest> mosMeasurement() const;
    Result<uint64_t> incarnation() const;

    /** Panic: hand control to the SPM (failure circumstance 2). */
    Status panic();

    /**
     * Called after the SPM reloaded this partition's mOS: all
     * in-memory mOS state (loaded enclaves, nonces, books) is gone.
     */
    void onReboot();

    /** Liveness tick. */
    void tick() { shim.heartbeat(); }

    tee::Spm &spm() { return partitionManager; }

  private:
    tee::Spm &partitionManager;
    tee::PartitionId pid;
    std::string devType;
    std::string devName;
    mos::ShimKernel shim;
    std::unique_ptr<mos::Hal> halImpl;
    std::unique_ptr<EnclaveManager> manager;
};

} // namespace cronus::core

#endif // CRONUS_CORE_MICRO_ENCLAVE_HH
