/**
 * @file
 * Enclave module store (cold-start amortization).
 *
 * Every legacy create() re-parses the manifest, re-hashes the image
 * and re-derives the enclave measurement -- per enclave, even when a
 * fleet of workers loads the same payload. The module store turns
 * mOS payloads into content-addressed *modules*: admit() verifies
 * and measures a (manifest, image) pair exactly once, pins the bytes
 * in SPM-resident storage, and hands back a ModuleRecord whose
 * measurement is reused by every subsequent instantiation. A cache
 * hit -- lookup() by digest -- skips the manifest parse, the image
 * hash check and the measurement SHA entirely; the trust argument is
 * that the record's measurement was computed *inside* the store at
 * admission over the exact bytes it still holds, so binding a cached
 * record is attestation-equivalent to a fresh load (DESIGN.md §10).
 *
 * Capacity is bounded: records are evicted LRU when the configured
 * byte budget would be exceeded, releasing their SPM reservation.
 * The store is an opt-in subsystem (CronusConfig::moduleStoreBytes,
 * default off) because hits change virtual time; the ablation
 * toggle CRONUS_DISABLE_MODSTORE forces it off for byte-identity
 * runs.
 */

#ifndef CRONUS_CORE_MODULE_STORE_HH
#define CRONUS_CORE_MODULE_STORE_HH

#include <list>
#include <map>

#include "manifest.hh"
#include "tee/spm.hh"

namespace cronus::core
{

/** One admitted module: verified bytes plus cached identity. */
struct ModuleRecord
{
    /** Content address: sha256(manifest_json || image). */
    crypto::Digest digest{};
    std::string manifestJson;
    Manifest manifest;
    std::string imageName;
    Bytes image;
    /** sha256(image), verified against the manifest at admission. */
    crypto::Digest imageHash{};
    /** sha256(manifest.measure() || imageHash): exactly the
     *  measurement create() would derive for this pair. */
    crypto::Digest measurement{};
    uint64_t hits = 0;

    /** Bytes this record pins in the SPM. */
    uint64_t residentBytes() const
    {
        return manifestJson.size() + image.size();
    }
};

class ModuleStore
{
  public:
    /** @p capacity_bytes bounds resident module bytes (LRU). */
    ModuleStore(tee::Spm &spm, uint64_t capacity_bytes);
    ~ModuleStore();

    ModuleStore(const ModuleStore &) = delete;
    ModuleStore &operator=(const ModuleStore &) = delete;

    /**
     * Verify, measure and cache a module. Charges the same
     * measurement SHA a legacy create() charges for this pair, so
     * the miss path costs what the un-cached pipeline costs. On
     * re-admission of an already-resident module this degrades to a
     * lookup() (no re-verification). The returned pointer stays
     * valid until the record is evicted.
     */
    Result<const ModuleRecord *> admit(const std::string &manifest_json,
                                       const std::string &image_name,
                                       const Bytes &image);

    /** Cache hit by content address; nullptr-free: NotFound when the
     *  digest is not resident. Bumps LRU recency and the hit count;
     *  charges nothing -- that is the point. */
    Result<const ModuleRecord *> lookup(const crypto::Digest &digest);

    /** Content address admit() will file a pair under. */
    static crypto::Digest digestOf(const std::string &manifest_json,
                                   const Bytes &image);

    size_t moduleCount() const { return records.size(); }
    uint64_t residentBytes() const { return resident; }
    uint64_t capacity() const { return capacityBytes; }

    StatGroup &statistics() { return stats; }

  private:
    struct Node
    {
        ModuleRecord record;
        /** Position in lru (most-recent at front). */
        std::list<crypto::Digest>::iterator lruIt;
    };

    void touch(Node &node);
    Status evictFor(uint64_t incoming_bytes);

    tee::Spm &spm;
    uint64_t capacityBytes;
    uint64_t resident = 0;
    std::map<crypto::Digest, Node> records;
    std::list<crypto::Digest> lru;
    StatGroup stats;
};

} // namespace cronus::core

#endif // CRONUS_CORE_MODULE_STORE_HH
