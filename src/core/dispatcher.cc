#include "dispatcher.hh"

#include "obs/trace.hh"

namespace cronus::core
{

void
EnclaveDispatcher::registerPartition(MicroOS *os)
{
    registered.push_back(os);
}

Result<MicroOS *>
EnclaveDispatcher::route(Eid eid)
{
    if (misroute) {
        MicroOS *forced = misroute(eid);
        if (forced != nullptr) {
            if (routeObserver)
                routeObserver(eid, forced);
            return forced;
        }
    }
    for (MicroOS *os : registered) {
        if (os->partitionId() == mosIdOf(eid)) {
            if (routeObserver)
                routeObserver(eid, os);
            return os;
        }
    }
    return Status(ErrorCode::NotFound,
                  "no partition for eid " + eidToString(eid));
}

Result<MicroOS *>
EnclaveDispatcher::partitionFor(const std::string &device_type,
                                const std::string &device_name)
{
    /* Least-loaded placement across identical accelerators: the
     * dispatcher records each partition's usable resources
     * (§III-A) and spreads new mEnclaves for utilization. */
    if (!device_name.empty() && isDegraded(device_name))
        return Status(ErrorCode::Degraded,
                      "device '" + device_name +
                      "' is quarantined");
    MicroOS *best = nullptr;
    size_t best_load = ~size_t(0);
    bool skipped_degraded = false;
    for (MicroOS *os : registered) {
        if (os->deviceType() != device_type)
            continue;
        if (!device_name.empty() && os->deviceName() != device_name)
            continue;
        if (isDegraded(os->deviceName())) {
            skipped_degraded = true;
            continue;
        }
        size_t load = os->enclaveManager().enclaveCount();
        if (load < best_load) {
            best = os;
            best_load = load;
        }
    }
    if (best != nullptr) {
        if (auto &trc = obs::Tracer::instance(); trc.active()) {
            JsonObject targs;
            targs["deviceType"] = device_type;
            targs["device"] = best->deviceName();
            targs["partition"] =
                static_cast<int64_t>(best->partitionId());
            targs["load"] = static_cast<int64_t>(best_load);
            trc.instant(trc.track("dispatcher"), "dispatch.place",
                        "dispatch", std::move(targs));
        }
        if (placementObserver)
            placementObserver(device_type, device_name, best);
        return best;
    }
    if (skipped_degraded)
        return Status(ErrorCode::Degraded,
                      "every '" + device_type +
                      "' device is quarantined");
    return Status(ErrorCode::NotFound,
                  "no partition manages a '" + device_type +
                  "' device" +
                  (device_name.empty() ? "" : " named '" +
                                              device_name + "'"));
}

} // namespace cronus::core
