#include "module_store.hh"

#include "base/logging.hh"

namespace cronus::core
{

ModuleStore::ModuleStore(tee::Spm &partition_manager,
                         uint64_t capacity_bytes)
    : spm(partition_manager), capacityBytes(capacity_bytes)
{
}

ModuleStore::~ModuleStore()
{
    if (resident > 0)
        spm.releaseStoreBytes(resident);
}

crypto::Digest
ModuleStore::digestOf(const std::string &manifest_json,
                      const Bytes &image)
{
    crypto::Sha256 ctx;
    ctx.update(manifest_json);
    ctx.update(image);
    return ctx.finalize();
}

void
ModuleStore::touch(Node &node)
{
    lru.erase(node.lruIt);
    lru.push_front(node.record.digest);
    node.lruIt = lru.begin();
}

Status
ModuleStore::evictFor(uint64_t incoming_bytes)
{
    if (incoming_bytes > capacityBytes)
        return Status(ErrorCode::ResourceExhausted,
                      "module larger than store capacity");
    while (resident + incoming_bytes > capacityBytes) {
        CRONUS_ASSERT(!lru.empty(), "resident bytes without records");
        crypto::Digest victim = lru.back();
        auto it = records.find(victim);
        CRONUS_ASSERT(it != records.end(), "LRU entry without record");
        uint64_t bytes = it->second.record.residentBytes();
        lru.pop_back();
        records.erase(it);
        spm.releaseStoreBytes(bytes);
        resident -= bytes;
        stats.counter("evictions").inc();
    }
    return Status::ok();
}

Result<const ModuleRecord *>
ModuleStore::lookup(const crypto::Digest &digest)
{
    auto it = records.find(digest);
    if (it == records.end()) {
        stats.counter("misses").inc();
        return Status(ErrorCode::NotFound, "module not resident");
    }
    touch(it->second);
    ++it->second.record.hits;
    stats.counter("hits").inc();
    return const_cast<const ModuleRecord *>(&it->second.record);
}

Result<const ModuleRecord *>
ModuleStore::admit(const std::string &manifest_json,
                   const std::string &image_name, const Bytes &image)
{
    /* Content addressing reuses the measurement pass: one walk over
     * the bytes yields the digest, and the virtual clock is charged
     * once below -- exactly what a legacy create() charges. */
    crypto::Digest digest = digestOf(manifest_json, image);
    auto hit = records.find(digest);
    if (hit != records.end()) {
        touch(hit->second);
        ++hit->second.record.hits;
        stats.counter("hits").inc();
        return const_cast<const ModuleRecord *>(&hit->second.record);
    }

    auto manifest = Manifest::fromJson(manifest_json);
    if (!manifest.isOk())
        return manifest.status();
    Manifest &mf = manifest.value();

    /* Image-hash verification mirrors EnclaveManager::create: the
     * store only vouches for pairs it checked itself. */
    crypto::Digest image_hash{};
    if (!image.empty() || !image_name.empty()) {
        auto declared = mf.images.find(image_name);
        if (declared == mf.images.end())
            return Status(ErrorCode::InvalidArgument,
                          "image '" + image_name +
                          "' not declared in manifest");
        image_hash = crypto::sha256(image);
        if (crypto::digestHex(image_hash) != declared->second)
            return Status(ErrorCode::IntegrityViolation,
                          "image hash mismatch for '" + image_name +
                          "'");
    }

    uint64_t bytes = manifest_json.size() + image.size();
    CRONUS_RETURN_IF_ERROR(evictFor(bytes));
    CRONUS_RETURN_IF_ERROR(spm.reserveStoreBytes(bytes));

    crypto::Sha256 measurement;
    measurement.update(crypto::digestToBytes(mf.measure()));
    measurement.update(crypto::digestToBytes(image_hash));
    hw::Platform &plat = spm.monitor().platform();
    plat.clock().advance(static_cast<SimTime>(
        bytes * plat.costs().shaNsPerByte));

    Node node;
    node.record.digest = digest;
    node.record.manifestJson = manifest_json;
    node.record.manifest = mf;
    node.record.imageName = image_name;
    node.record.image = image;
    node.record.imageHash = image_hash;
    node.record.measurement = measurement.finalize();
    lru.push_front(digest);
    auto [it, inserted] = records.emplace(digest, std::move(node));
    CRONUS_ASSERT(inserted, "digest raced into the store");
    it->second.lruIt = lru.begin();
    resident += bytes;
    stats.counter("admissions").inc();
    return const_cast<const ModuleRecord *>(&it->second.record);
}

} // namespace cronus::core
