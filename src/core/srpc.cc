#include "srpc.hh"

#include "base/logging.hh"
#include "obs/trace.hh"

namespace cronus::core
{

namespace
{

constexpr uint64_t kMagicOff = 0x00;
constexpr uint64_t kRidOff = 0x08;
constexpr uint64_t kSidOff = 0x10;
constexpr uint64_t kClosedOff = 0x18;
constexpr uint64_t kDcheckOff = 0x20;   /* 32 bytes */
constexpr uint64_t kSlotsOff = 0x40;
constexpr uint64_t kSrpcMagic = 0x5352504353525043ull;

Bytes
u64Bytes(uint64_t v)
{
    ByteWriter w;
    w.putU64(v);
    return w.take();
}

/* Little-endian, matching ByteWriter::putU32 — the in-ring fast
 * path serializes the same wire format the Bytes path produced. */
void
encodeU32(uint8_t *buf, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf[i] = (v >> (8 * i)) & 0xff;
}

uint32_t
decodeU32(const uint8_t *buf)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(buf[i]) << (8 * i);
    return v;
}

} // namespace

SrpcChannel::SrpcChannel(MicroOS &caller_os, Eid caller_eid,
                         MicroOS &callee_os, Eid callee_eid,
                         Bytes secret, tee::NormalWorld &nw,
                         const SrpcConfig &config)
    : callerOs(caller_os), callerEid(caller_eid), calleeOs(callee_os),
      calleeEid(callee_eid), secretDhke(std::move(secret)),
      normalWorld(nw), cfg(config)
{
}

SrpcChannel::~SrpcChannel()
{
    if (open || peerFailed)
        close();
    /* Covers partially-set-up channels: close() is unreachable for
     * them, but any grant/pages acquired must still go back. */
    releaseSmem();
}

Result<uint64_t>
SrpcChannel::headerFieldOffset(const std::string &field)
{
    if (field == "magic")
        return kMagicOff;
    if (field == "rid")
        return kRidOff;
    if (field == "sid")
        return kSidOff;
    if (field == "closed")
        return kClosedOff;
    if (field == "dcheck")
        return kDcheckOff;
    return Status(ErrorCode::InvalidArgument,
                  "unknown ring-header field '" + field + "'");
}

uint64_t
SrpcChannel::slotOffset(uint64_t index) const
{
    return kSlotsOff + (index % cfg.slots) * cfg.slotBytes;
}

Status
SrpcChannel::writeCaller(uint64_t off, const Bytes &data)
{
    Status s = callerOs.spm().write(callerOs.partitionId(),
                                    smemBase + off, data);
    if (s.code() == ErrorCode::PeerFailed)
        markFailed();
    return s;
}

Result<Bytes>
SrpcChannel::readCaller(uint64_t off, uint64_t len)
{
    auto r = callerOs.spm().read(callerOs.partitionId(),
                                 smemBase + off, len);
    if (r.code() == ErrorCode::PeerFailed)
        markFailed();
    return r;
}

Status
SrpcChannel::writeCallee(uint64_t off, const Bytes &data)
{
    Status s = calleeOs.spm().write(calleeOs.partitionId(),
                                    smemBase + off, data);
    /* InvalidState means the callee's own partition is failed or
     * rebooting -- from the channel's perspective, the peer died. */
    if (s.code() == ErrorCode::PeerFailed ||
        s.code() == ErrorCode::InvalidState) {
        markFailed();
        return Status(ErrorCode::PeerFailed, "callee partition down");
    }
    return s;
}

Result<Bytes>
SrpcChannel::readCallee(uint64_t off, uint64_t len)
{
    auto r = calleeOs.spm().read(calleeOs.partitionId(),
                                 smemBase + off, len);
    if (r.code() == ErrorCode::PeerFailed ||
        r.code() == ErrorCode::InvalidState) {
        markFailed();
        return Status(ErrorCode::PeerFailed, "callee partition down");
    }
    return r;
}

Status
SrpcChannel::writeCallerRaw(uint64_t off, const uint8_t *data,
                            uint64_t len)
{
    Status s = callerOs.spm().write(callerOs.partitionId(),
                                    smemBase + off, data, len);
    if (s.code() == ErrorCode::PeerFailed)
        markFailed();
    return s;
}

Status
SrpcChannel::readCallerRaw(uint64_t off, uint8_t *out, uint64_t len)
{
    Status s = callerOs.spm().readInto(callerOs.partitionId(),
                                       smemBase + off, out, len);
    if (s.code() == ErrorCode::PeerFailed)
        markFailed();
    return s;
}

Status
SrpcChannel::writeCalleeRaw(uint64_t off, const uint8_t *data,
                            uint64_t len)
{
    Status s = calleeOs.spm().write(calleeOs.partitionId(),
                                    smemBase + off, data, len);
    if (s.code() == ErrorCode::PeerFailed ||
        s.code() == ErrorCode::InvalidState) {
        markFailed();
        return Status(ErrorCode::PeerFailed, "callee partition down");
    }
    return s;
}

Status
SrpcChannel::readCalleeRaw(uint64_t off, uint8_t *out, uint64_t len)
{
    Status s = calleeOs.spm().readInto(calleeOs.partitionId(),
                                       smemBase + off, out, len);
    if (s.code() == ErrorCode::PeerFailed ||
        s.code() == ErrorCode::InvalidState) {
        markFailed();
        return Status(ErrorCode::PeerFailed, "callee partition down");
    }
    return s;
}

Result<uint64_t>
SrpcChannel::readCounter(uint64_t off, bool callee_side)
{
    MicroOS &os = callee_side ? calleeOs : callerOs;
    auto r = os.spm().readU64(os.partitionId(), smemBase + off);
    if (r.code() == ErrorCode::PeerFailed ||
        (callee_side && r.code() == ErrorCode::InvalidState)) {
        markFailed();
        if (callee_side)
            return Status(ErrorCode::PeerFailed,
                          "callee partition down");
    }
    if (r.isOk())
        ++channelStats.counterFastOps;
    return r;
}

Status
SrpcChannel::writeCounter(uint64_t off, uint64_t value,
                          bool callee_side)
{
    MicroOS &os = callee_side ? calleeOs : callerOs;
    Status s = os.spm().writeU64(os.partitionId(), smemBase + off,
                                 value);
    if (s.code() == ErrorCode::PeerFailed ||
        (callee_side && s.code() == ErrorCode::InvalidState)) {
        markFailed();
        if (callee_side)
            return Status(ErrorCode::PeerFailed,
                          "callee partition down");
    }
    if (s.isOk())
        ++channelStats.counterFastOps;
    return s;
}

void
SrpcChannel::markFailed()
{
    /* sRPC automatically clears state when getting the fault signal
     * (§IV-D): cached indices are reset and the channel refuses
     * further traffic. The smem grant is released by close() or the
     * destructor, whichever runs first. */
    peerFailed = true;
    open = false;
    if (auto &trc = obs::Tracer::instance(); trc.active()) {
        JsonObject targs;
        targs["callee"] = static_cast<int64_t>(calleeEid);
        trc.instant(trc.enclaveTrack(callerEid,
                                     callerOs.deviceName()),
                    "srpc.failed", "srpc", std::move(targs));
    }
    if (observer)
        observer->onFailed(*this);
}

bool
SrpcChannel::releaseSmem()
{
    bool revoked = false;
    if (grant != 0) {
        /* After a peer failure the SPM may already have retired the
         * grant through the trap path; revoke is then a no-op. */
        revoked = callerOs.spm()
                      .revokeGrant(grant, callerOs.partitionId())
                      .isOk();
        grant = 0;
    }
    if (smemBase != 0) {
        callerOs.shimKernel().freePages(smemBase,
                                        smemBytes / hw::kPageSize);
        smemBase = 0;
        smemBytes = 0;
    }
    return revoked;
}

Result<std::unique_ptr<SrpcChannel>>
SrpcChannel::connect(MicroOS &caller_os, Eid caller_eid,
                     MicroOS &callee_os, Eid callee_eid,
                     const Bytes &secret, tee::NormalWorld &nw,
                     const SrpcConfig &config)
{
    std::unique_ptr<SrpcChannel> channel(
        new SrpcChannel(caller_os, caller_eid, callee_os, callee_eid,
                        secret, nw, config));
    CRONUS_RETURN_IF_ERROR(channel->setup());
    return channel;
}

Status
SrpcChannel::setup()
{
    Status s = setupInner();
    if (!s.isOk()) {
        /* Error-path cleanup: anything acquired before the failure
         * (smem pages, the SPM grant) must not leak. */
        releaseSmem();
    }
    return s;
}

Status
SrpcChannel::setupInner()
{
    tee::Spm &spm = callerOs.spm();
    tee::SecureMonitor &monitor = spm.monitor();
    hw::Platform &plat = monitor.platform();

    auto &trc = obs::Tracer::instance();
    obs::Span setup_span;
    if (trc.active()) {
        setup_span = obs::Span(
            trc.partitionTrack(callerOs.partitionId(),
                               callerOs.deviceName()),
            "srpc.setup", "srpc");
        setup_span.arg("caller", static_cast<int64_t>(callerEid));
        setup_span.arg("callee", static_cast<int64_t>(calleeEid));
    }

    SimTime phase_start = plat.clock().now();

    /* 1. Local attestation of the callee, over untrusted memory.
     * The request/response are MACed with secret_dhke because the
     * mOSes are mutually untrusted before attestation (§IV-A). */
    Bytes challenge(16);
    {
        ByteWriter w;
        w.putU32(callerEid);
        w.putU32(calleeEid);
        w.putU64(plat.clock().now());
        crypto::Digest d = crypto::sha256(w.take());
        std::copy_n(d.begin(), challenge.size(), challenge.begin());
    }
    /* Request travels through the normal world: world switches. */
    monitor.worldSwitch();
    monitor.worldSwitch();
    channelStats.setupWorldSwitches += 2;

    auto report = calleeOs.enclaveManager().localAttest(calleeEid,
                                                        challenge);
    if (!report.isOk())
        return report.status();
    monitor.worldSwitch();
    monitor.worldSwitch();
    channelStats.setupWorldSwitches += 2;

    if (!EnclaveManager::verifyLocalReport(report.value(),
                                           monitor.localSealKey()))
        return Status(ErrorCode::AuthFailed,
                      "local attestation MAC invalid");
    if (report.value().eid != calleeEid ||
        report.value().challenge != challenge)
        return Status(ErrorCode::AuthFailed,
                      "local attestation mismatch");
    channelStats.setupAttestNs = plat.clock().now() - phase_start;
    phase_start = plat.clock().now();

    /* 2. Allocate smem from the caller's partition and share it. */
    smemBytes = hw::pageAlignUp(kSlotsOff +
                                cfg.slots * cfg.slotBytes);
    auto base = callerOs.shimKernel().allocPages(smemBytes /
                                                 hw::kPageSize);
    if (!base.isOk())
        return base.status();
    smemBase = base.value();

    auto grant_id = spm.sharePages(callerOs.partitionId(),
                                   calleeOs.partitionId(), smemBase,
                                   smemBytes / hw::kPageSize);
    if (!grant_id.isOk())
        return grant_id.status();
    grant = grant_id.value();

    /* 3. Initialize the ring header. */
    CRONUS_RETURN_IF_ERROR(writeCaller(kMagicOff,
                                       u64Bytes(kSrpcMagic)));
    CRONUS_RETURN_IF_ERROR(writeCaller(kRidOff, u64Bytes(0)));
    CRONUS_RETURN_IF_ERROR(writeCaller(kSidOff, u64Bytes(0)));
    CRONUS_RETURN_IF_ERROR(writeCaller(kClosedOff, Bytes{0}));
    channelStats.setupGrantNs = plat.clock().now() - phase_start;
    phase_start = plat.clock().now();

    /* 4. dCheck: the callee proves ownership of secret_dhke through
     * the shared memory itself. The callee computes its tag from
     * *its own* copy of the secret (held since creation); the caller
     * independently computes the expected tag from its copy. A
     * substituted enclave/mOS cannot forge it. */
    ByteWriter dcheck_input;
    dcheck_input.putString("dcheck");
    dcheck_input.putU64(grant);
    dcheck_input.putU32(calleeEid);
    dcheck_input.putU64(report.value().partitionIncarnation);

    auto callee_enclave =
        calleeOs.enclaveManager().enclave(calleeEid);
    if (!callee_enclave.isOk())
        return callee_enclave.status();
    Bytes callee_tag = crypto::digestToBytes(crypto::hmacSha256(
        callee_enclave.value()->secret(), dcheck_input.data()));
    CRONUS_RETURN_IF_ERROR(writeCallee(kDcheckOff, callee_tag));

    Bytes expected_tag = crypto::digestToBytes(
        crypto::hmacSha256(secretDhke, dcheck_input.data()));
    auto observed = readCaller(kDcheckOff, 32);
    if (!observed.isOk())
        return observed.status();
    if (!constantTimeEqual(observed.value(), expected_tag))
        return Status(ErrorCode::AuthFailed, "dCheck failed");
    channelStats.setupDcheckNs = plat.clock().now() - phase_start;
    phase_start = plat.clock().now();

    /* 5. Ask the normal world for an executor thread (one switch,
     * once per stream -- not per call). */
    monitor.worldSwitch();
    ++channelStats.setupWorldSwitches;
    normalWorld.spawnThread([this] {
        if (peerFailed || !open)
            return false;
        pump(4);
        return open && !peerFailed;
    });

    channelStats.setupExecutorNs = plat.clock().now() - phase_start;

    open = true;
    setup_span.arg("grant", static_cast<int64_t>(grant));
    if (observer)
        observer->onSetup(*this, grant);
    return Status::ok();
}

Result<uint64_t>
SrpcChannel::callAsync(const std::string &fn, const Bytes &args)
{
    if (peerFailed)
        return Status(ErrorCode::PeerFailed, "channel failed");
    if (!open)
        return Status(ErrorCode::InvalidState, "channel closed");

    hw::Platform &plat = callerOs.spm().monitor().platform();

    /* Flow control: if the ring is full, let the executor drain. */
    while (rid - sid >= cfg.slots) {
        uint64_t done = pump(1);
        if (peerFailed)
            return Status(ErrorCode::PeerFailed, "channel failed");
        if (done == 0)
            return Status(ErrorCode::ResourceExhausted,
                          "ring stalled");
    }

    /* Serialize the frame directly into the ring -- same wire format
     * the ByteWriter path produced:
     *   [u32 frame_len][u32 fn_len][fn][u32 args_len][args] */
    uint64_t request_size = 4 + fn.size() + 4 + args.size();
    if (request_size > cfg.requestBytes())
        return Status(ErrorCode::InvalidArgument,
                      "request exceeds slot capacity");

    uint64_t slot = slotOffset(rid);
    uint8_t hdr[8];
    encodeU32(hdr, static_cast<uint32_t>(request_size));
    encodeU32(hdr + 4, static_cast<uint32_t>(fn.size()));
    CRONUS_RETURN_IF_ERROR(writeCallerRaw(slot, hdr, 8));
    if (!fn.empty())
        CRONUS_RETURN_IF_ERROR(writeCallerRaw(
            slot + 8, reinterpret_cast<const uint8_t *>(fn.data()),
            fn.size()));
    encodeU32(hdr, static_cast<uint32_t>(args.size()));
    CRONUS_RETURN_IF_ERROR(writeCallerRaw(slot + 8 + fn.size(), hdr,
                                          4));
    if (!args.empty())
        CRONUS_RETURN_IF_ERROR(writeCallerRaw(slot + 12 + fn.size(),
                                              args.data(),
                                              args.size()));
    plat.chargeMemcpy(request_size);
    plat.clock().advance(plat.costs().ringBufferOpNs);

    uint64_t this_rid = rid++;
    CRONUS_RETURN_IF_ERROR(writeCounter(kRidOff, rid, false));
    ++channelStats.asyncCalls;
    channelStats.bytesTransferred += request_size;
    if (auto &trc = obs::Tracer::instance(); trc.active()) {
        JsonObject targs;
        targs["fn"] = fn;
        targs["rid"] = static_cast<int64_t>(this_rid);
        trc.instant(trc.enclaveTrack(callerEid,
                                     callerOs.deviceName()),
                    "srpc.enqueue", "srpc", std::move(targs));
    }
    if (observer)
        observer->onEnqueue(*this, rid, sid);
    return this_rid;
}

uint64_t
SrpcChannel::pump(uint64_t max)
{
    if (peerFailed)
        return 0;
    uint64_t executed = 0;
    hw::Platform &plat = calleeOs.spm().monitor().platform();

    while (executed < max) {
        /* Executor view of the ring: fetch Rid from smem. This is
         * the poll — one in-place counter read, no allocation. */
        auto rid_now = readCounter(kRidOff, true);
        if (!rid_now.isOk())
            return executed;
        uint64_t remote_rid = rid_now.value();
        if (sid >= remote_rid)
            break;

        /* Parse the request frame in place:
         *   [u32 frame_len][u32 fn_len][fn][u32 args_len][args]
         * Each length is validated against the enclosing frame
         * before the bytes it promises are read. */
        uint64_t slot = slotOffset(sid);
        uint8_t hdr[8];
        if (!readCalleeRaw(slot, hdr, 8).isOk())
            return executed;
        uint32_t req_len = decodeU32(hdr);
        uint32_t fn_len = decodeU32(hdr + 4);
        Status resp_status = Status::ok();
        Bytes resp_payload;
        if (req_len > cfg.requestBytes()) {
            resp_status = Status(ErrorCode::InvalidArgument,
                                 "corrupt request length");
        } else if (4 + uint64_t(fn_len) + 4 > req_len) {
            resp_status = Status(ErrorCode::InvalidArgument,
                                 "corrupt request frame");
        } else {
            execFn.resize(fn_len);
            if (fn_len > 0 &&
                !readCalleeRaw(
                     slot + 8,
                     reinterpret_cast<uint8_t *>(execFn.data()),
                     fn_len).isOk())
                return executed;
            if (!readCalleeRaw(slot + 8 + fn_len, hdr, 4).isOk())
                return executed;
            uint32_t args_len = decodeU32(hdr);
            if (4 + uint64_t(fn_len) + 4 + args_len > req_len) {
                resp_status = Status(ErrorCode::InvalidArgument,
                                     "corrupt request frame");
            } else {
                execArgs.resize(args_len);
                if (args_len > 0 &&
                    !readCalleeRaw(slot + 12 + fn_len,
                                   execArgs.data(),
                                   args_len).isOk())
                    return executed;
                obs::Span exec_span;
                if (auto &trc = obs::Tracer::instance();
                    trc.active()) {
                    exec_span = obs::Span(
                        trc.partitionTrack(calleeOs.partitionId(),
                                           calleeOs.deviceName()),
                        "srpc.execute", "srpc");
                    exec_span.arg("fn", execFn);
                    exec_span.arg("sid",
                                  static_cast<int64_t>(sid));
                    exec_span.arg("callee",
                                  static_cast<int64_t>(calleeEid));
                }
                auto result = calleeOs.enclaveManager().invokeLocal(
                    calleeEid, execFn, execArgs);
                if (result.isOk())
                    resp_payload = result.value();
                else
                    resp_status = result.status();
            }
        }

        /* Write the response header directly into the slot's
         * response half. An oversized payload is replaced by an
         * error frame. */
        if (resp_payload.size() > cfg.responseBytes()) {
            resp_status = Status(ErrorCode::ResourceExhausted,
                                 "response exceeds slot capacity");
            resp_payload.clear();
        }
        uint64_t resp_off = slot + cfg.slotBytes / 2;
        encodeU32(hdr, static_cast<uint32_t>(resp_status.code()));
        encodeU32(hdr + 4,
                  static_cast<uint32_t>(resp_payload.size()));
        if (!writeCalleeRaw(resp_off, hdr, 8).isOk())
            return executed;
        if (!resp_payload.empty() &&
            !writeCalleeRaw(resp_off + 8, resp_payload.data(),
                            resp_payload.size()).isOk())
            return executed;
        uint64_t resp_frame_size = 8 + resp_payload.size();
        plat.chargeMemcpy(resp_frame_size);
        plat.clock().advance(plat.costs().ringBufferOpNs);
        channelStats.bytesTransferred += resp_frame_size;

        ++sid;
        if (!writeCounter(kSidOff, sid, true).isOk())
            return executed;
        ++executed;
        ++channelStats.executed;
        if (observer)
            observer->onExecuted(*this, rid, sid);
        calleeOs.tick();
    }
    return executed;
}

Result<Bytes>
SrpcChannel::resultOf(uint64_t request_id)
{
    if (request_id >= rid)
        return Status(ErrorCode::InvalidArgument,
                      "request never issued");
    /* Slot-lifetime rule: slotOffset wraps mod cfg.slots, so at
     * rid - request_id == cfg.slots the slot counts as recycled --
     * returning its contents would hand back a newer request's
     * response as if it were the old one. */
    if (rid - request_id >= cfg.slots)
        return Status(ErrorCode::NotFound,
                      "response slot already recycled");
    if (sid <= request_id)
        return Status(ErrorCode::InvalidState,
                      "request not yet executed (drain first)");

    if (observer)
        observer->onResultRead(*this, request_id, rid, sid);
    uint64_t slot = slotOffset(request_id) + cfg.slotBytes / 2;
    uint8_t header[8];
    CRONUS_RETURN_IF_ERROR(readCallerRaw(slot, header, 8));
    uint32_t code = decodeU32(header);
    uint32_t len = decodeU32(header + 4);
    if (code != uint32_t(ErrorCode::Ok))
        return Status(static_cast<ErrorCode>(code),
                      "remote mECall failed");
    if (len == 0)
        return Bytes{};
    return readCaller(slot + 8, len);
}

Result<Bytes>
SrpcChannel::callSync(const std::string &fn, const Bytes &args)
{
    obs::Span call_span;
    if (auto &trc = obs::Tracer::instance(); trc.active()) {
        call_span = obs::Span(
            trc.enclaveTrack(callerEid, callerOs.deviceName()),
            "srpc.call", "srpc");
        call_span.arg("fn", fn);
        call_span.arg("callee", static_cast<int64_t>(calleeEid));
    }
    auto request_id = callAsync(fn, args);
    if (!request_id.isOk())
        return request_id.status();
    /* The caller needs the result: check progress now (§IV-C). */
    while (sid <= request_id.value()) {
        uint64_t done = pump(1);
        if (peerFailed)
            return Status(ErrorCode::PeerFailed, "channel failed");
        if (done == 0)
            return Status(ErrorCode::Timeout, "executor stalled");
    }
    ++channelStats.syncCalls;
    --channelStats.asyncCalls;
    return resultOf(request_id.value());
}

Result<Bytes>
SrpcChannel::call(const std::string &fn, const Bytes &args)
{
    auto enclave = calleeOs.enclaveManager().enclave(calleeEid);
    bool is_async = enclave.isOk() &&
                    enclave.value()->isAsync(fn);
    if (is_async) {
        auto request_id = callAsync(fn, args);
        if (!request_id.isOk())
            return request_id.status();
        return Bytes{};
    }
    return callSync(fn, args);
}

Status
SrpcChannel::drain()
{
    obs::Span drain_span;
    if (auto &trc = obs::Tracer::instance(); trc.active()) {
        drain_span = obs::Span(
            trc.enclaveTrack(callerEid, callerOs.deviceName()),
            "srpc.drain", "srpc");
        drain_span.arg("pending",
                       static_cast<int64_t>(rid - sid));
    }
    while (sid < rid) {
        uint64_t done = pump(1);
        if (peerFailed)
            return Status(ErrorCode::PeerFailed, "channel failed");
        if (done == 0)
            return Status(ErrorCode::Timeout, "executor stalled");
    }
    /* streamCheck: Sid == Rid, cross-checked against smem. Each
     * check is one in-place counter read — no allocation. */
    auto rid_mem = readCounter(kRidOff, false);
    auto sid_mem = readCounter(kSidOff, false);
    if (!rid_mem.isOk() || !sid_mem.isOk())
        return Status(ErrorCode::PeerFailed, "channel failed");
    if (rid_mem.value() != sid_mem.value())
        return Status(ErrorCode::IntegrityViolation,
                      "streamCheck failed (Sid != Rid)");
    return Status::ok();
}

Status
SrpcChannel::close()
{
    if (closed || (!open && !peerFailed))
        return Status(ErrorCode::InvalidState, "channel not open");

    obs::Span close_span;
    if (auto &trc = obs::Tracer::instance(); trc.active()) {
        close_span = obs::Span(
            trc.partitionTrack(callerOs.partitionId(),
                               callerOs.deviceName()),
            "srpc.close", "srpc");
        close_span.arg("grant", static_cast<int64_t>(grant));
    }
    Status drained = Status::ok();
    if (!peerFailed) {
        drained = drain();
        /* drain() may itself discover the peer failure; only touch
         * smem again when the channel is still healthy. */
        if (!peerFailed)
            writeCaller(kClosedOff, Bytes{1});
    }
    open = false;
    closed = true;
    /* Revoke-on-failure: the grant is released even when the peer
     * died -- otherwise every failed channel leaks its smem grant
     * and pages (the SPM may already have retired the grant through
     * the trap path, in which case only the pages come back). */
    uint64_t grant_id = grant;
    bool revoked = releaseSmem();
    if (observer)
        observer->onClosed(*this, grant_id, revoked);
    return drained;
}

} // namespace cronus::core
