#include "system.hh"

#include <cstdlib>

#include "base/logging.hh"
#include "crypto/aes.hh"

namespace cronus::core
{

namespace
{

bool
moduleStoreForcedOff()
{
    const char *env = std::getenv("CRONUS_DISABLE_MODSTORE");
    return env != nullptr && env[0] != '\0';
}

} // namespace

CronusSystem::CronusSystem(const CronusConfig &config) : cfg(config)
{
    hw::PlatformConfig pc;
    pc.normalMemBytes = cfg.normalMemBytes;
    pc.secureMemBytes = cfg.secureMemBytes;
    pc.externalClock = cfg.sharedClock;
    /* Named fleet members carry distinct root-of-trust identities;
     * anonymous (single-node) systems keep the default seed. */
    if (!cfg.nodeName.empty())
        pc.rotSeed = toBytes("platform-" + cfg.nodeName);
    plat = std::make_unique<hw::Platform>(pc);

    /* Vendor PKI: ARM for the CPU, NVIDIA for GPUs, VTA for NPUs. */
    vendorKeys["arm"] = crypto::deriveKeyPair(toBytes("vendor-arm"));
    vendorKeys["nvidia"] =
        crypto::deriveKeyPair(toBytes("vendor-nvidia"));
    vendorKeys["vta"] = crypto::deriveKeyPair(toBytes("vendor-vta"));
    for (const auto &[name, keys] : vendorKeys)
        plat->vendors().addVendor(name, keys.pub);

    /* Devices. */
    struct DevicePlan
    {
        std::string name;
        std::string type;
        std::string vendor;
        crypto::PublicKey rotKey;
    };
    std::vector<DevicePlan> plan;

    {
        accel::CpuConfig cc;
        auto *dev = static_cast<accel::CpuDevice *>(
            plat->registerDevice(std::make_unique<accel::CpuDevice>(cc),
                                 32));
        plan.push_back({cc.name, "cpu", "arm", dev->devicePublicKey()});
    }
    for (uint32_t i = 0; i < cfg.numGpus; ++i) {
        accel::GpuConfig gc;
        gc.name = "gpu" + std::to_string(i);
        gc.vramBytes = cfg.gpuVramBytes;
        gc.rotSeed = toBytes("gpu-rot-" + std::to_string(i));
        auto *dev = static_cast<accel::GpuDevice *>(
            plat->registerDevice(std::make_unique<accel::GpuDevice>(gc),
                                 40 + i));
        plan.push_back({gc.name, "gpu", "nvidia",
                        dev->devicePublicKey()});
    }
    if (cfg.withNpu) {
        accel::NpuConfig nc;
        auto *dev = static_cast<accel::NpuDevice *>(
            plat->registerDevice(std::make_unique<accel::NpuDevice>(nc),
                                 60));
        plan.push_back({nc.name, "npu", "vta", dev->devicePublicKey()});
    }

    /* Secure boot with all devices assigned to the secure world. */
    sm = std::make_unique<tee::SecureMonitor>(*plat);
    hw::DeviceTree dt;
    hw::DeviceTree discovered = plat->buildDeviceTree();
    for (auto node : discovered.all()) {
        node.world = hw::World::Secure;
        dt.addNode(node);
    }
    Status booted = sm->boot(dt);
    CRONUS_ASSERT(booted.isOk(), "secure boot: " + booted.toString());

    partitionManager = std::make_unique<tee::Spm>(*sm, cfg.backend);
    nw = std::make_unique<tee::NormalWorld>(*sm, *partitionManager);

    /* Module store: opt-in (cache hits change virtual time), and the
     * ablation toggle wins over the config. */
    if (cfg.moduleStoreBytes > 0 && !moduleStoreForcedOff())
        modStore = std::make_unique<ModuleStore>(
            *partitionManager, cfg.moduleStoreBytes);

    /* Failover wiring: record trap signals for inspection. */
    partitionManager->setTrapHandler([this](const tee::TrapSignal &s) {
        observedTraps.push_back(s);
    });

    /* One partition + MicroOS per device. */
    for (const auto &entry : plan) {
        tee::MosImage image{entry.type + "-" + entry.name + ".mos",
                            entry.type,
                            toBytes("mos-code:" + entry.name)};
        auto pid = partitionManager->createPartition(
            image, entry.name, cfg.partitionMemBytes);
        CRONUS_ASSERT(pid.isOk(),
                      "partition: " + pid.status().toString());

        auto record = std::make_unique<PartitionRecord>();
        record->pid = pid.value();
        record->os = std::make_unique<MicroOS>(
            *partitionManager, pid.value(), entry.type, entry.name);
        record->image = image;
        record->vendor = entry.vendor;
        record->deviceEndorsement = crypto::sign(
            vendorKeys[entry.vendor].priv, entry.rotKey.toBytes());
        enclaveDispatcher.registerPartition(record->os.get());
        records.push_back(std::move(record));
    }

    /* Unified metrics: the scattered component counters become
     * pull-sources of one registry, snapshotted in one call. The
     * closures capture `this`; members outlive the registry uses
     * because the registry is destroyed with the system. */
    metricsRegistry.addSource("platform", [this] {
        JsonObject o = plat->stats().toJson().asObject();
        o["virtual_time_ns"] =
            static_cast<int64_t>(plat->clock().now());
        return JsonValue(std::move(o));
    });
    metricsRegistry.addSource("monitor", [this] {
        JsonObject o;
        o["world_switches"] =
            static_cast<int64_t>(sm->worldSwitchCount());
        o["sel2_rpc_switches"] =
            static_cast<int64_t>(sm->sel2SwitchCount());
        return JsonValue(std::move(o));
    });
    metricsRegistry.addSource("spm", [this] {
        return partitionManager->statistics().toJson();
    });
    metricsRegistry.addSource("tlb", [this] {
        hw::TlbCounters c = partitionManager->tlbCounters();
        JsonObject o;
        o["hits"] = static_cast<int64_t>(c.hits);
        o["misses"] = static_cast<int64_t>(c.misses);
        o["fills"] = static_cast<int64_t>(c.fills);
        o["shootdowns"] = static_cast<int64_t>(c.shootdowns);
        return JsonValue(std::move(o));
    });
    if (modStore != nullptr) {
        metricsRegistry.addSource("modstore", [this] {
            JsonObject o = modStore->statistics().toJson().asObject();
            o["modules"] =
                static_cast<int64_t>(modStore->moduleCount());
            o["resident_bytes"] =
                static_cast<int64_t>(modStore->residentBytes());
            o["capacity_bytes"] =
                static_cast<int64_t>(modStore->capacity());
            return JsonValue(std::move(o));
        });
    }
    metricsRegistry.addSource("smmu", [this] {
        hw::TlbCounters c = plat->smmu().tlbCounters();
        JsonObject o;
        o["hits"] = static_cast<int64_t>(c.hits);
        o["misses"] = static_cast<int64_t>(c.misses);
        o["fills"] = static_cast<int64_t>(c.fills);
        o["shootdowns"] = static_cast<int64_t>(c.shootdowns);
        return JsonValue(std::move(o));
    });
}

Result<CronusSystem::PartitionRecord *>
CronusSystem::recordForDevice(const std::string &device_name)
{
    for (auto &record : records) {
        if (record->os->deviceName() == device_name)
            return record.get();
    }
    return Status(ErrorCode::NotFound,
                  "no partition for device '" + device_name + "'");
}

Result<MicroOS *>
CronusSystem::mosForDevice(const std::string &device_name)
{
    auto record = recordForDevice(device_name);
    if (!record.isOk())
        return record.status();
    return record.value()->os.get();
}

std::vector<MicroOS *>
CronusSystem::allMos()
{
    std::vector<MicroOS *> out;
    for (auto &record : records)
        out.push_back(record->os.get());
    return out;
}

Result<AppHandle>
CronusSystem::createEnclave(const std::string &manifest_json,
                            const std::string &image_name,
                            const Bytes &image,
                            const std::string &device_name)
{
    /* Peek at the manifest to pick a partition (the dispatcher is
     * allowed to read it; it is untrusted data anyway). */
    auto manifest = Manifest::fromJson(manifest_json);
    if (!manifest.isOk())
        return manifest.status();
    auto os = enclaveDispatcher.partitionFor(
        manifest.value().deviceType, device_name);
    if (!os.isOk())
        return os.status();

    /* Creation crosses into the secure world. */
    sm->worldSwitch();
    plat->clock().advance(plat->costs().dispatchNs);

    AppHandle handle;
    handle.ownerKeys = crypto::deriveKeyPair(
        toBytes("app-owner-" + std::to_string(ownerCounter++)));
    auto created = os.value()->enclaveManager().create(
        manifest_json, image_name, image, handle.ownerKeys.pub);
    sm->worldSwitch();
    if (!created.isOk())
        return created.status();

    handle.eid = created.value().eid;
    handle.secret = crypto::dhSharedSecret(handle.ownerKeys.priv,
                                           created.value().enclavePub);
    plat->clock().advance(plat->costs().dhNs);
    handle.host = os.value();
    return handle;
}

Result<AppHandle>
CronusSystem::createEnclaveCached(const std::string &manifest_json,
                                  const std::string &image_name,
                                  const Bytes &image,
                                  const std::string &device_name)
{
    if (modStore == nullptr)
        return createEnclave(manifest_json, image_name, image,
                             device_name);

    /* Content addressing stands in for "the client knows its
     * module's digest": resolving it charges nothing. */
    crypto::Digest digest =
        ModuleStore::digestOf(manifest_json, image);
    const ModuleRecord *record = nullptr;
    auto hit = modStore->lookup(digest);
    if (hit.isOk()) {
        record = hit.value();
    } else {
        auto admitted = modStore->admit(manifest_json, image_name,
                                        image);
        if (!admitted.isOk())
            return admitted.status();
        record = admitted.value();
    }

    /* The record's parsed manifest also spares the dispatcher its
     * routing re-parse. */
    auto os = enclaveDispatcher.partitionFor(
        record->manifest.deviceType, device_name);
    if (!os.isOk())
        return os.status();

    sm->worldSwitch();
    plat->clock().advance(plat->costs().dispatchNs);

    AppHandle handle;
    handle.ownerKeys = crypto::deriveKeyPair(
        toBytes("app-owner-" + std::to_string(ownerCounter++)));
    auto created = os.value()->enclaveManager().createFromRecord(
        *record, handle.ownerKeys.pub);
    sm->worldSwitch();
    if (!created.isOk())
        return created.status();

    handle.eid = created.value().eid;
    handle.secret = crypto::dhSharedSecret(handle.ownerKeys.priv,
                                           created.value().enclavePub);
    plat->clock().advance(plat->costs().dhNs);
    handle.host = os.value();
    return handle;
}

Result<AppHandle>
CronusSystem::createEnclaveShell(const std::string &device_type,
                                 uint64_t mem_bytes,
                                 const std::string &device_name)
{
    auto os = enclaveDispatcher.partitionFor(device_type,
                                             device_name);
    if (!os.isOk())
        return os.status();

    sm->worldSwitch();
    plat->clock().advance(plat->costs().dispatchNs);

    AppHandle handle;
    handle.ownerKeys = crypto::deriveKeyPair(
        toBytes("app-owner-" + std::to_string(ownerCounter++)));
    auto created = os.value()->enclaveManager().createShell(
        handle.ownerKeys.pub, mem_bytes);
    sm->worldSwitch();
    if (!created.isOk())
        return created.status();

    handle.eid = created.value().eid;
    handle.secret = crypto::dhSharedSecret(handle.ownerKeys.priv,
                                           created.value().enclavePub);
    plat->clock().advance(plat->costs().dhNs);
    handle.host = os.value();
    return handle;
}

Status
CronusSystem::bindEnclaveModule(AppHandle &handle,
                                const ModuleRecord &record)
{
    auto os = enclaveDispatcher.route(handle.eid);
    if (!os.isOk())
        return os.status();
    uint64_t nonce = ++handle.nonce;
    Bytes digest_bytes = crypto::digestToBytes(record.digest);
    Bytes tag = EnclaveManager::authTag(handle.secret, handle.eid,
                                        nonce, "bind", digest_bytes);
    plat->clock().advance(static_cast<SimTime>(
        digest_bytes.size() * plat->costs().hmacNsPerByte));
    sm->worldSwitch();
    plat->clock().advance(plat->costs().dispatchNs);
    Status bound = os.value()->enclaveManager().bindModule(
        handle.eid, record, nonce, tag);
    sm->worldSwitch();
    return bound;
}

Result<Bytes>
CronusSystem::ecall(AppHandle &handle, const std::string &fn,
                    const Bytes &args)
{
    auto os = enclaveDispatcher.route(handle.eid);
    if (!os.isOk())
        return os.status();
    uint64_t nonce = ++handle.nonce;
    Bytes tag = EnclaveManager::authTag(handle.secret, handle.eid,
                                        nonce, fn, args);
    plat->clock().advance(static_cast<SimTime>(
        args.size() * plat->costs().hmacNsPerByte));
    sm->worldSwitch();
    plat->clock().advance(plat->costs().dispatchNs);
    auto result = os.value()->enclaveManager().ecall(handle.eid, fn,
                                                     args, nonce, tag);
    sm->worldSwitch();
    if (ecallObserver)
        ecallObserver(handle.eid, fn, result.status(),
                      result.isOk() ? result.value() : Bytes{});
    return result;
}

Status
CronusSystem::destroyEnclave(AppHandle &handle)
{
    auto os = enclaveDispatcher.route(handle.eid);
    if (!os.isOk())
        return os.status();
    uint64_t nonce = ++handle.nonce;
    Bytes tag = EnclaveManager::authTag(handle.secret, handle.eid,
                                        nonce, "destroy", Bytes{});
    return os.value()->enclaveManager().destroy(handle.eid, nonce,
                                                tag);
}

Result<std::unique_ptr<SrpcChannel>>
CronusSystem::connect(const AppHandle &caller, const AppHandle &callee,
                      const SrpcConfig &config)
{
    if (caller.host == nullptr || callee.host == nullptr)
        return Status(ErrorCode::InvalidArgument,
                      "handles must be created first");
    return SrpcChannel::connect(*caller.host, caller.eid,
                                *callee.host, callee.eid,
                                callee.secret, *nw, config);
}

Result<Bytes>
CronusSystem::checkpointEnclave(AppHandle &handle)
{
    auto os = enclaveDispatcher.route(handle.eid);
    if (!os.isOk())
        return os.status();
    uint64_t nonce = ++handle.nonce;
    Bytes tag = EnclaveManager::authTag(handle.secret, handle.eid,
                                        nonce, "checkpoint", Bytes{});
    return os.value()->enclaveManager().checkpoint(handle.eid, nonce,
                                                   tag);
}

Status
CronusSystem::restoreEnclave(AppHandle &handle, const Bytes &sealed,
                             const Bytes &source_secret)
{
    /* Owner-side re-seal: open under the producing enclave's secret
     * and seal again under the target's. */
    auto plaintext = crypto::openMessage(source_secret, sealed);
    if (!plaintext.isOk())
        return plaintext.status();
    uint64_t nonce = ++handle.nonce;
    Bytes resealed = crypto::sealMessage(handle.secret, nonce,
                                         plaintext.value());
    Bytes tag = EnclaveManager::authTag(handle.secret, handle.eid,
                                        nonce, "restore", resealed);
    auto os = enclaveDispatcher.route(handle.eid);
    if (!os.isOk())
        return os.status();
    return os.value()->enclaveManager().restore(handle.eid, nonce,
                                                tag, resealed);
}

Result<SignedAttestationReport>
CronusSystem::attest(const AppHandle &handle, const Bytes &challenge)
{
    auto os = enclaveDispatcher.route(handle.eid);
    if (!os.isOk())
        return os.status();
    return attestEnclave(*os.value(), handle.eid, challenge);
}

ClientExpectation
CronusSystem::expectationFor(const AppHandle &handle)
{
    ClientExpectation expect;
    expect.platformRoot = plat->rootOfTrust().publicKey();
    expect.expectedDt = sm->deviceTree().measure();
    if (handle.host != nullptr) {
        auto mos_hash = handle.host->mosMeasurement();
        if (mos_hash.isOk())
            expect.expectedMos = mos_hash.value();
        auto enclave =
            handle.host->enclaveManager().enclave(handle.eid);
        if (enclave.isOk())
            expect.expectedEnclave = enclave.value()->measure();
        auto record = recordForDevice(handle.host->deviceName());
        if (record.isOk()) {
            expect.vendorKey =
                vendorKeys[record.value()->vendor].pub;
            expect.deviceEndorsement =
                record.value()->deviceEndorsement;
        }
    }
    return expect;
}

JsonValue
CronusSystem::statsReport()
{
    JsonObject root;
    root["virtual_time_ns"] =
        static_cast<int64_t>(plat->clock().now());

    JsonObject monitor_stats;
    monitor_stats["world_switches"] =
        static_cast<int64_t>(sm->worldSwitchCount());
    monitor_stats["sel2_rpc_switches"] =
        static_cast<int64_t>(sm->sel2SwitchCount());
    root["monitor"] = JsonValue(std::move(monitor_stats));

    JsonObject spm_stats;
    for (const auto &[name, counter] :
         partitionManager->statistics().all())
        spm_stats[name] = static_cast<int64_t>(counter.value());
    spm_stats["trap_signals"] =
        static_cast<int64_t>(observedTraps.size());
    root["spm"] = JsonValue(std::move(spm_stats));

    JsonObject hw_stats;
    for (const auto &[name, counter] : plat->stats().all())
        hw_stats[name] = static_cast<int64_t>(counter.value());
    root["hardware"] = JsonValue(std::move(hw_stats));

    JsonObject partitions;
    for (const auto &record : records) {
        JsonObject entry;
        entry["device"] = record->os->deviceName();
        entry["type"] = record->os->deviceType();
        entry["enclaves"] = static_cast<int64_t>(
            record->os->enclaveManager().enclaveCount());
        entry["memory_in_use"] = static_cast<int64_t>(
            record->os->enclaveManager().memoryInUse());
        auto incarnation = record->os->incarnation();
        entry["incarnation"] = static_cast<int64_t>(
            incarnation.isOk() ? incarnation.value() : 0);
        partitions["p" + std::to_string(record->pid)] =
            JsonValue(std::move(entry));
    }
    root["partitions"] = JsonValue(std::move(partitions));
    return JsonValue(std::move(root));
}

Status
CronusSystem::injectPanic(const std::string &device_name)
{
    auto record = recordForDevice(device_name);
    if (!record.isOk())
        return record.status();
    return partitionManager->panic(record.value()->pid);
}

Status
CronusSystem::recover(const std::string &device_name,
                      bool charge_clock)
{
    auto record = recordForDevice(device_name);
    if (!record.isOk())
        return record.status();
    Status recovered = partitionManager->recoverPartition(
        record.value()->pid, record.value()->image, charge_clock);
    if (recovered.isOk())
        record.value()->os->onReboot();
    return recovered;
}

Result<SimTime>
CronusSystem::recoveryEstimate(const std::string &device_name)
{
    auto record = recordForDevice(device_name);
    if (!record.isOk())
        return record.status();
    return partitionManager->recoveryEstimate(record.value()->pid);
}

} // namespace cronus::core
