/**
 * @file
 * Automatic partitioning of a monolithic enclave (§V-B).
 *
 * A monolithic enclave program mixes CPU computation with CUDA/VTA
 * calls. The partitioner splits it into one mEnclave per device
 * kind, generates their manifests (with sync/async sRPC flags
 * derived from call semantics), and the runner converts every
 * device call into an mEnclave RPC -- no application changes.
 */

#ifndef CRONUS_CORE_AUTO_PARTITION_HH
#define CRONUS_CORE_AUTO_PARTITION_HH

#include "system.hh"

namespace cronus::core
{

/** One operation of a monolithic enclave. */
struct MonoOp
{
    enum class Kind
    {
        Cpu,   ///< function from the CPU image
        Cuda,  ///< CUDA driver API call
        Npu,   ///< VTA call
    };

    Kind kind = Kind::Cpu;
    std::string fn;
    Bytes args;
};

/** The monolithic program as the developer wrote it. */
struct MonolithicProgram
{
    std::string name;
    std::vector<MonoOp> ops;
    CpuImage cpuImage;              ///< exports for CPU ops
    accel::GpuModuleImage gpuImage; ///< kernels for CUDA ops
};

/** What the partitioner produces. */
struct PartitionPlan
{
    bool needsCpu = false;
    bool needsGpu = false;
    bool needsNpu = false;
    std::string cpuManifest;
    std::string gpuManifest;
    std::string npuManifest;
    Bytes cpuImageBytes;
    Bytes gpuImageBytes;
};

class AutoPartitioner
{
  public:
    /** Analyze @p program and emit manifests/images per device. */
    static Result<PartitionPlan> partition(
        const MonolithicProgram &program);

    /** Results of a partitioned run. */
    struct RunResult
    {
        std::vector<Bytes> outputs;  ///< one per op
        SrpcStats gpuStats;
        SrpcStats npuStats;
    };

    /**
     * Execute @p program on @p system: create the mEnclaves the plan
     * calls for, wire sRPC channels, and stream every device call
     * through them.
     */
    static Result<RunResult> run(CronusSystem &system,
                                 const MonolithicProgram &program);

    /** Whether a CUDA call is asynchronous under sRPC (§IV-C). */
    static bool cudaCallIsAsync(const std::string &fn);
};

} // namespace cronus::core

#endif // CRONUS_CORE_AUTO_PARTITION_HH
