/**
 * @file
 * mEnclave identifiers.
 *
 * A 32-bit eid whose first 8 bits are the mOS (partition) id and
 * last 24 bits the enclave id within that mOS (§IV-A). The SPM uses
 * the mOS part to validate cross-mOS messages.
 */

#ifndef CRONUS_CORE_EID_HH
#define CRONUS_CORE_EID_HH

#include <cstdint>
#include <string>

#include "hw/types.hh"

namespace cronus::core
{

using Eid = uint32_t;

constexpr uint32_t kEnclaveIdBits = 24;
constexpr uint32_t kEnclaveIdMask = (1u << kEnclaveIdBits) - 1;

inline Eid
makeEid(hw::PartitionId mos_id, uint32_t enclave_id)
{
    return (mos_id << kEnclaveIdBits) | (enclave_id & kEnclaveIdMask);
}

inline hw::PartitionId
mosIdOf(Eid eid)
{
    return eid >> kEnclaveIdBits;
}

inline uint32_t
enclaveIdOf(Eid eid)
{
    return eid & kEnclaveIdMask;
}

inline std::string
eidToString(Eid eid)
{
    return std::to_string(mosIdOf(eid)) + ":" +
           std::to_string(enclaveIdOf(eid));
}

} // namespace cronus::core

#endif // CRONUS_CORE_EID_HH
