/**
 * @file
 * Streaming RPC (sRPC) between mEnclaves (§IV-C).
 *
 * sRPC models RPC requests as input to a stream processor: the
 * caller (mE_A) continuously appends serialized mECalls to a ring
 * buffer in *trusted shared memory* (owned by A's partition, shared
 * to B's through the SPM), and a dedicated executor thread for mE_B
 * drains the ring -- no per-call context switch. The caller checks
 * progress only when it needs a result or a synchronization point.
 *
 * Security structure:
 *  - setup does local attestation of the callee over untrusted
 *    memory, every message MACed with secret_dhke (the DH ownership
 *    secret), then establishes the shared region and runs dCheck:
 *    the callee proves ownership of secret_dhke *through the shared
 *    memory*, so the caller knows the region is really shared with
 *    the authenticated mE_B;
 *  - requests/responses live only in trusted memory, so the normal
 *    OS can neither observe RPC timing nor tamper/reorder/replay;
 *  - the executor consumes slots strictly in order (Sid), and
 *    drain() verifies streamCheck (Sid == Rid);
 *  - a partition failure turns the next shared-memory access into a
 *    trap; the channel observes PeerFailed, clears its state and
 *    surfaces the failure (A1/A2 defenses, §IV-D).
 *
 * Slot-lifetime rule: the ring has cfg.slots slots and slotOffset
 * wraps request indices mod cfg.slots, so the response of request r
 * may be fetched through resultOf(r) only while fewer than cfg.slots
 * newer requests have been issued (Rid - r < cfg.slots). Once
 * Rid - r >= cfg.slots the slot is considered recycled and resultOf
 * returns NotFound -- never the recycled slot's contents. The
 * InvariantAuditor (src/inject/) checks this rule, together with
 * streamCheck (Sid <= Rid <= Sid + slots) and grant accounting, on
 * every channel operation.
 */

#ifndef CRONUS_CORE_SRPC_HH
#define CRONUS_CORE_SRPC_HH

#include <memory>

#include "micro_enclave.hh"

namespace cronus::core
{

struct SrpcConfig
{
    uint64_t slots = 8;
    uint64_t slotBytes = 262144;
    /** Payload area per slot (requests); responses use the rest. */
    uint64_t requestBytes() const { return slotBytes / 2 - 16; }
    uint64_t responseBytes() const { return slotBytes / 2 - 16; }
};

/** Channel statistics (for the ablation benches). */
struct SrpcStats
{
    uint64_t asyncCalls = 0;
    uint64_t syncCalls = 0;
    uint64_t executed = 0;
    /** Request and response bytes moved through the ring. */
    uint64_t bytesTransferred = 0;
    uint64_t setupWorldSwitches = 0;
    /** Ring-counter reads/writes served by the zero-copy fast path
     *  (in-place u64 accesses, no intermediate Bytes). */
    uint64_t counterFastOps = 0;
    /* Per-phase virtual time of channel setup (pure bookkeeping:
     * clock deltas observed around the existing steps, charging
     * nothing extra). fig13 reports these as the cold-start
     * breakdown: attestation, grant + page-table setup, dCheck,
     * executor spawn. */
    SimTime setupAttestNs = 0;
    SimTime setupGrantNs = 0;
    SimTime setupDcheckNs = 0;
    SimTime setupExecutorNs = 0;
};

class SrpcChannel;

/**
 * Observes channel lifecycle and ring operations. Registered by the
 * invariant auditor (src/inject/): every callback fires after the
 * channel updated its cached indices, so the observer sees the state
 * the next operation will run against.
 */
class SrpcObserver
{
  public:
    virtual ~SrpcObserver() = default;
    /** Channel established; the second argument is its smem grant. */
    virtual void onSetup(const SrpcChannel &, uint64_t /*grant_id*/) {}
    /** A request was enqueued (Rid already advanced). */
    virtual void onEnqueue(const SrpcChannel &, uint64_t /*rid*/,
                           uint64_t /*sid*/) {}
    /** The executor completed a request (Sid already advanced). */
    virtual void onExecuted(const SrpcChannel &, uint64_t /*rid*/,
                            uint64_t /*sid*/) {}
    /** resultOf passed validation and is about to read the slot. */
    virtual void onResultRead(const SrpcChannel &,
                              uint64_t /*request_id*/,
                              uint64_t /*rid*/, uint64_t /*sid*/) {}
    /** The channel observed a peer failure. */
    virtual void onFailed(const SrpcChannel &) {}
    /** The channel released its smem; `revoked` tells whether the
     *  grant was revoked here (false: already retired by the SPM). */
    virtual void onClosed(const SrpcChannel &, uint64_t /*grant_id*/,
                          bool /*revoked*/) {}
};

class SrpcChannel
{
  public:
    /**
     * Establish a channel from @p caller_eid (hosted by
     * @p caller_os) to @p callee_eid (hosted by @p callee_os).
     * @p secret is secret_dhke between the *owner* of the callee
     * (which is the caller) and the callee enclave.
     *
     * Performs: local attestation -> smem allocation from the
     * caller's partition -> SPM page grant -> dCheck -> executor
     * thread creation in the normal world.
     */
    static Result<std::unique_ptr<SrpcChannel>> connect(
        MicroOS &caller_os, Eid caller_eid, MicroOS &callee_os,
        Eid callee_eid, const Bytes &secret, tee::NormalWorld &nw,
        const SrpcConfig &config = SrpcConfig());

    ~SrpcChannel();

    /**
     * Invoke @p fn; async mECalls (per the callee manifest) are
     * enqueued without waiting and return an empty payload, sync
     * mECalls pump the executor to completion and return its result.
     */
    Result<Bytes> call(const std::string &fn, const Bytes &args);

    /** Force-enqueue without waiting (returns the request index). */
    Result<uint64_t> callAsync(const std::string &fn,
                               const Bytes &args);

    /** Enqueue and wait for this call's result. */
    Result<Bytes> callSync(const std::string &fn, const Bytes &args);

    /**
     * streamCheck: pump until Sid == Rid; fails if any queued call
     * failed or the peer died.
     */
    Status drain();

    /** Result of the async request @p rid (drain first). */
    Result<Bytes> resultOf(uint64_t rid);

    /** Close the stream and stop the executor thread. */
    Status close();

    bool failed() const { return peerFailed; }
    const SrpcStats &stats() const { return channelStats; }
    uint64_t grantId() const { return grant; }

    /* --- introspection (injection / audit tooling) --- */

    /** Register @p obs (may be nullptr) for channel events. */
    void setObserver(SrpcObserver *obs) { observer = obs; }
    const SrpcConfig &config() const { return cfg; }
    /** Physical base of the ring in the caller's partition. */
    tee::PhysAddr ringBase() const { return smemBase; }
    uint64_t requestIndex() const { return rid; }
    uint64_t progressIndex() const { return sid; }
    /**
     * Byte offset of a named ring-header field ("magic", "rid",
     * "sid", "closed", "dcheck") from ringBase(). Lets the fault
     * injector corrupt a specific field without replicating the
     * layout.
     */
    static Result<uint64_t> headerFieldOffset(
        const std::string &field);

    /**
     * Executor step: process up to @p max pending requests in the
     * callee partition. Returns requests executed; sets the channel
     * failed state if the callee's memory access traps. Used by the
     * normal-world thread and by callSync's progress checks.
     */
    uint64_t pump(uint64_t max = ~0ull);

  private:
    SrpcChannel(MicroOS &caller_os, Eid caller_eid,
                MicroOS &callee_os, Eid callee_eid, Bytes secret,
                tee::NormalWorld &nw, const SrpcConfig &config);

    Status setup();
    Status setupInner();
    /** Revoke the grant and free the smem pages; idempotent. Returns
     *  true when the grant was revoked by this call. */
    bool releaseSmem();
    Status writeCaller(uint64_t off, const Bytes &data);
    Result<Bytes> readCaller(uint64_t off, uint64_t len);
    Status writeCallee(uint64_t off, const Bytes &data);
    Result<Bytes> readCallee(uint64_t off, uint64_t len);
    /* Non-allocating variants: headers/payloads move between the
     * ring and caller-provided buffers. */
    Status writeCallerRaw(uint64_t off, const uint8_t *data,
                          uint64_t len);
    Status readCallerRaw(uint64_t off, uint8_t *out, uint64_t len);
    Status writeCalleeRaw(uint64_t off, const uint8_t *data,
                          uint64_t len);
    Status readCalleeRaw(uint64_t off, uint8_t *out, uint64_t len);
    Result<uint64_t> readCounter(uint64_t off, bool callee_side);
    Status writeCounter(uint64_t off, uint64_t value,
                        bool callee_side);
    uint64_t slotOffset(uint64_t index) const;
    void markFailed();

    MicroOS &callerOs;
    Eid callerEid;
    MicroOS &calleeOs;
    Eid calleeEid;
    Bytes secretDhke;
    tee::NormalWorld &normalWorld;
    SrpcConfig cfg;

    tee::PhysAddr smemBase = 0;
    uint64_t smemBytes = 0;
    uint64_t grant = 0;
    uint64_t rid = 0;  ///< caller-side cached request index
    uint64_t sid = 0;  ///< executor-side cached progress index
    /* Executor scratch: reused across pump() iterations so the
     * steady-state call path performs no per-call allocations once
     * the high-water capacity is reached. */
    std::string execFn;
    Bytes execArgs;
    bool open = false;
    bool closed = false;  ///< close() already ran (resources gone)
    bool peerFailed = false;
    SrpcStats channelStats;
    SrpcObserver *observer = nullptr;
};

} // namespace cronus::core

#endif // CRONUS_CORE_SRPC_HH
