#include "attestation.hh"

#include <algorithm>

namespace cronus::core
{

Bytes
AttestationReport::serialize() const
{
    ByteWriter w;
    w.putU32(eid);
    w.putBytes(crypto::digestToBytes(enclaveMeasurement));
    w.putBytes(crypto::digestToBytes(mosMeasurement));
    w.putBytes(crypto::digestToBytes(dtMeasurement));
    w.putBytes(devicePublicKey);
    w.putBytes(deviceConfigSig.toBytes());
    w.putBytes(challenge);
    return w.take();
}

Bytes
SignedAttestationReport::toWire() const
{
    ByteWriter w;
    w.putU32(report.eid);
    w.putBytes(crypto::digestToBytes(report.enclaveMeasurement));
    w.putBytes(crypto::digestToBytes(report.mosMeasurement));
    w.putBytes(crypto::digestToBytes(report.dtMeasurement));
    w.putBytes(report.devicePublicKey);
    w.putBytes(report.deviceConfigSig.toBytes());
    w.putBytes(report.challenge);
    w.putBytes(reportSignature.toBytes());
    w.putBytes(atkPublicKey);
    w.putBytes(atkEndorsement.toBytes());
    return w.take();
}

namespace
{

Result<crypto::Digest>
digestFrom(ByteReader &r)
{
    auto bytes = r.getBytes();
    if (!bytes.isOk())
        return bytes.status();
    if (bytes.value().size() != 32)
        return Status(ErrorCode::InvalidArgument,
                      "digest must be 32 bytes");
    crypto::Digest d;
    std::copy(bytes.value().begin(), bytes.value().end(),
              d.begin());
    return d;
}

Result<crypto::Signature>
signatureFrom(ByteReader &r)
{
    auto bytes = r.getBytes();
    if (!bytes.isOk())
        return bytes.status();
    return crypto::Signature::fromBytes(bytes.value());
}

} // namespace

Result<SignedAttestationReport>
SignedAttestationReport::fromWire(const Bytes &wire)
{
    ByteReader r(wire);
    SignedAttestationReport out;
    auto eid = r.getU32();
    if (!eid.isOk())
        return eid.status();
    out.report.eid = eid.value();

    auto enclave_digest = digestFrom(r);
    if (!enclave_digest.isOk())
        return enclave_digest.status();
    out.report.enclaveMeasurement = enclave_digest.value();
    auto mos_digest = digestFrom(r);
    if (!mos_digest.isOk())
        return mos_digest.status();
    out.report.mosMeasurement = mos_digest.value();
    auto dt_digest = digestFrom(r);
    if (!dt_digest.isOk())
        return dt_digest.status();
    out.report.dtMeasurement = dt_digest.value();

    auto device_key = r.getBytes();
    if (!device_key.isOk())
        return device_key.status();
    out.report.devicePublicKey = device_key.value();
    auto device_sig = signatureFrom(r);
    if (!device_sig.isOk())
        return device_sig.status();
    out.report.deviceConfigSig = device_sig.value();
    auto challenge = r.getBytes();
    if (!challenge.isOk())
        return challenge.status();
    out.report.challenge = challenge.value();

    auto report_sig = signatureFrom(r);
    if (!report_sig.isOk())
        return report_sig.status();
    out.reportSignature = report_sig.value();
    auto atk = r.getBytes();
    if (!atk.isOk())
        return atk.status();
    out.atkPublicKey = atk.value();
    auto endorsement = signatureFrom(r);
    if (!endorsement.isOk())
        return endorsement.status();
    out.atkEndorsement = endorsement.value();
    if (!r.atEnd())
        return Status(ErrorCode::InvalidArgument,
                      "trailing bytes in attestation wire form");
    return out;
}

Result<SignedAttestationReport>
attestEnclave(MicroOS &os, Eid eid, const Bytes &challenge)
{
    auto enclave = os.enclaveManager().enclave(eid);
    if (!enclave.isOk())
        return enclave.status();

    /* The HAL proves hardware authenticity (§IV-A): the device signs
     * its configuration with its fused key and the mOS verifies. */
    auto device_att = os.hal().attestDevice(challenge);
    if (!device_att.isOk())
        return device_att.status();

    tee::SecureMonitor &monitor = os.spm().monitor();

    AttestationReport report;
    report.eid = eid;
    report.enclaveMeasurement = enclave.value()->measure();
    auto mos_hash = os.mosMeasurement();
    if (!mos_hash.isOk())
        return mos_hash.status();
    report.mosMeasurement = mos_hash.value();
    report.dtMeasurement = monitor.deviceTree().measure();
    report.devicePublicKey =
        device_att.value().devicePublicKey.toBytes();
    report.deviceConfigSig = device_att.value().configSignature;
    report.challenge = challenge;

    SignedAttestationReport out;
    out.report = report;
    out.reportSignature = monitor.signReport(report.serialize());
    out.atkPublicKey = monitor.attestationKey().toBytes();
    out.atkEndorsement = monitor.atkEndorsement();
    return out;
}

Status
verifyAttestation(const SignedAttestationReport &signed_report,
                  const ClientExpectation &expect)
{
    const AttestationReport &report = signed_report.report;

    /* 1. AtK is endorsed by the trusted platform root. */
    if (!crypto::verify(expect.platformRoot,
                        signed_report.atkPublicKey,
                        signed_report.atkEndorsement))
        return Status(ErrorCode::AuthFailed,
                      "AtK not endorsed by the platform root");

    /* 2. The report is signed by AtK. */
    crypto::PublicKey atk =
        crypto::PublicKey::fromBytes(signed_report.atkPublicKey);
    if (!crypto::verify(atk, report.serialize(),
                        signed_report.reportSignature))
        return Status(ErrorCode::AuthFailed,
                      "report signature invalid");

    /* 3. Challenge freshness. */
    if (report.challenge != expect.challenge)
        return Status(ErrorCode::AuthFailed, "stale challenge");

    /* 4. Measurements: mEnclave, mOS and the frozen DT. The client
     * trusts only the code and hardware in the partition it uses
     * (R3.2). */
    if (report.enclaveMeasurement != expect.expectedEnclave)
        return Status(ErrorCode::IntegrityViolation,
                      "mEnclave measurement mismatch");
    if (report.mosMeasurement != expect.expectedMos)
        return Status(ErrorCode::IntegrityViolation,
                      "mOS measurement mismatch");
    if (report.dtMeasurement != expect.expectedDt)
        return Status(ErrorCode::IntegrityViolation,
                      "device-tree measurement mismatch "
                      "(misconfigured platform)");

    /* 5. PubK_acc is endorsed by the hardware vendor (fabricated
     * accelerator defense). */
    crypto::PublicKey device_key =
        crypto::PublicKey::fromBytes(report.devicePublicKey);
    if (!crypto::verify(expect.vendorKey, device_key.toBytes(),
                        expect.deviceEndorsement))
        return Status(ErrorCode::AuthFailed,
                      "accelerator key lacks vendor endorsement");
    return Status::ok();
}

} // namespace cronus::core
