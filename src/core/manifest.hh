/**
 * @file
 * mEnclave manifest (the paper's Fig. 3).
 *
 * A manifest specifies the device type, image hashes, the list of
 * mECalls (the edl format instrumented with a sync/async flag for
 * sRPC, §IV-A), and resource capacities. Manifests arrive from the
 * untrusted normal world, so parsing is defensive and image hashes
 * are verified against the actual images at create time.
 */

#ifndef CRONUS_CORE_MANIFEST_HH
#define CRONUS_CORE_MANIFEST_HH

#include <map>
#include <string>
#include <vector>

#include "base/json.hh"
#include "crypto/sha256.hh"

namespace cronus::core
{

/** One mECall declaration. */
struct McallDecl
{
    std::string name;
    /** Async mECalls stream through sRPC without waiting. */
    bool async = false;

    bool operator==(const McallDecl &o) const
    {
        return name == o.name && async == o.async;
    }
};

class Manifest
{
  public:
    std::string deviceType;                       ///< "cpu"|"gpu"|"npu"
    std::map<std::string, std::string> images;    ///< file -> sha256 hex
    std::vector<McallDecl> mEcalls;
    uint64_t memoryBytes = 0;

    /** Parse from JSON text (untrusted input). */
    static Result<Manifest> fromJson(const std::string &text);

    /** Canonical JSON (stable ordering), reparseable. */
    std::string toJson() const;

    /** Measurement included in attestation reports. */
    crypto::Digest measure() const;

    bool declaresCall(const std::string &name) const;
    /** Whether @p name is declared async; false if undeclared. */
    bool isAsync(const std::string &name) const;

    /** Parse "1G" / "64M" / "4096" memory size strings. */
    static Result<uint64_t> parseMemorySize(const std::string &text);
};

} // namespace cronus::core

#endif // CRONUS_CORE_MANIFEST_HH
