#include "warm_pool.hh"

namespace cronus::core
{

namespace
{

bool
digestIsZero(const crypto::Digest &d)
{
    for (uint8_t b : d) {
        if (b != 0)
            return false;
    }
    return true;
}

} // namespace

WarmPool::WarmPool(CronusSystem &system, Config config)
    : sys(system), cfg(std::move(config))
{
}

Status
WarmPool::prefill(size_t count, const AppHandle *driver)
{
    for (size_t i = 0; i < count; ++i) {
        auto handle = sys.createEnclaveShell(cfg.deviceType,
                                             cfg.shellMemBytes,
                                             cfg.deviceName);
        if (!handle.isOk())
            return handle.status();

        auto shell = std::make_unique<WarmShell>();
        shell->handle = handle.value();

        /* Attest once, at prefill: the challenge is derived from the
         * shell's identity so repeated prefills stay deterministic. */
        Bytes challenge = crypto::digestToBytes(crypto::sha256(
            "warm-pool-challenge:" +
            eidToString(shell->handle.eid)));
        challenge.resize(16);
        auto report = sys.attest(shell->handle, challenge);
        if (!report.isOk())
            return report.status();
        ClientExpectation expect =
            sys.expectationFor(shell->handle);
        expect.challenge = challenge;
        CRONUS_RETURN_IF_ERROR(
            verifyAttestation(report.value(), expect));
        shell->report = report.value();

        if (driver != nullptr) {
            auto channel = sys.connect(*driver, shell->handle);
            if (!channel.isOk())
                return channel.status();
            shell->channel = std::move(channel.value());
        }
        shells.push_back(std::move(shell));
        stats.counter("prefilled").inc();
    }
    return Status::ok();
}

size_t
WarmPool::available() const
{
    size_t free_count = 0;
    for (const auto &shell : shells) {
        if (!shell->inUse)
            ++free_count;
    }
    return free_count;
}

Result<WarmShell *>
WarmPool::acquire(const ModuleRecord &record)
{
    if (shells.empty())
        return Status(ErrorCode::NotFound, "warm pool not prefilled");

    /* Prefer a shell already bound to this module (affinity: the
     * bind is free), then any free shell. */
    WarmShell *candidate = nullptr;
    for (auto &shell : shells) {
        if (shell->inUse)
            continue;
        if (shell->boundDigest == record.digest) {
            candidate = shell.get();
            break;
        }
        if (candidate == nullptr)
            candidate = shell.get();
    }
    if (candidate == nullptr)
        return Status(ErrorCode::ResourceExhausted,
                      "all warm shells leased");

    if (candidate->boundDigest == record.digest &&
        !digestIsZero(candidate->boundDigest)) {
        stats.counter("affinity_hits").inc();
    } else {
        CRONUS_RETURN_IF_ERROR(
            sys.bindEnclaveModule(candidate->handle, record));
        candidate->boundDigest = record.digest;
        stats.counter("binds").inc();
    }
    candidate->inUse = true;
    stats.counter("acquires").inc();
    return candidate;
}

Status
WarmPool::release(WarmShell *shell)
{
    if (shell == nullptr || !shell->inUse)
        return Status(ErrorCode::InvalidState,
                      "shell is not leased from this pool");
    shell->inUse = false;
    stats.counter("releases").inc();
    return Status::ok();
}

} // namespace cronus::core
