#include "micro_enclave.hh"

#include "base/logging.hh"
#include "crypto/aes.hh"

namespace cronus::core
{

/* ------------------------------------------------------------------ */
/* MicroEnclave                                                        */
/* ------------------------------------------------------------------ */

Result<Bytes>
MicroEnclave::invoke(const std::string &fn, const Bytes &args)
{
    if (fn != lastDeclaredFn) {
        if (!manifest.declaresCall(fn))
            return Status(ErrorCode::PermissionDenied,
                          "mECall '" + fn +
                          "' not declared in the manifest");
        lastDeclaredFn = fn;
    }
    return runtime->meCall(fn, args);
}

Status
MicroEnclave::bind(const Manifest &mf, const crypto::Digest &meas,
                   const Bytes &image)
{
    Status bound = runtime->meBind(image);
    if (!bound.isOk())
        return bound;
    manifest = mf;
    measurement = meas;
    /* The declaresCall memo belongs to the previous manifest. */
    lastDeclaredFn.clear();
    return Status::ok();
}

/* ------------------------------------------------------------------ */
/* Local attestation report                                            */
/* ------------------------------------------------------------------ */

Bytes
LocalAttestationReport::macInput() const
{
    ByteWriter w;
    w.putU32(eid);
    w.putU64(partitionIncarnation);
    w.putBytes(crypto::digestToBytes(enclaveMeasurement));
    w.putBytes(crypto::digestToBytes(mosMeasurement));
    w.putBytes(challenge);
    return w.take();
}

/* ------------------------------------------------------------------ */
/* EnclaveManager                                                      */
/* ------------------------------------------------------------------ */

EnclaveManager::EnclaveManager(MicroOS &os) : mos(os)
{
}

Result<std::unique_ptr<EnclaveRuntime>>
EnclaveManager::makeRuntime(const std::string &device_type)
{
    if (device_type != mos.deviceType())
        return Status(ErrorCode::InvalidArgument,
                      "manifest device_type '" + device_type +
                      "' does not match this mOS ('" +
                      mos.deviceType() + "')");
    mos::Hal &hal = mos.hal();
    if (device_type == "cpu")
        return std::unique_ptr<EnclaveRuntime>(
            new CpuRuntime(static_cast<mos::CpuHal &>(hal)));
    if (device_type == "gpu")
        return std::unique_ptr<EnclaveRuntime>(
            new CudaRuntime(static_cast<mos::GpuHal &>(hal)));
    if (device_type == "npu")
        return std::unique_ptr<EnclaveRuntime>(
            new NpuRuntime(static_cast<mos::NpuHal &>(hal)));
    return Status(ErrorCode::Unsupported,
                  "no execution model for '" + device_type + "'");
}

Result<EnclaveCreated>
EnclaveManager::create(const std::string &manifest_json,
                       const std::string &image_name,
                       const Bytes &image,
                       const crypto::PublicKey &owner_pub)
{
    if (!mos.spm().validateMosId(mos.partitionId()))
        return Status(ErrorCode::InvalidState,
                      "partition not ready (failed or rebooting)");
    mos.tick();
    /* Guard the 24-bit enclave-id space before any side effect:
     * create/destroy churn must hit ResourceExhausted, not wrap ids
     * into a colliding (or truncated) eid. */
    if (nextEnclaveId > kEnclaveIdMask)
        return Status(ErrorCode::ResourceExhausted,
                      "enclave id space exhausted on partition " +
                      std::to_string(mos.partitionId()));
    auto manifest = Manifest::fromJson(manifest_json);
    if (!manifest.isOk())
        return manifest.status();
    Manifest &mf = manifest.value();

    /* Verify the image hash against the manifest (integrity of the
     * code the client attested). A null image is allowed for
     * devices with fixed functions (§IV-A). */
    crypto::Digest image_hash{};
    if (!image.empty() || !image_name.empty()) {
        auto declared = mf.images.find(image_name);
        if (declared == mf.images.end())
            return Status(ErrorCode::InvalidArgument,
                          "image '" + image_name +
                          "' not declared in manifest");
        image_hash = crypto::sha256(image);
        if (crypto::digestHex(image_hash) != declared->second)
            return Status(ErrorCode::IntegrityViolation,
                          "image hash mismatch for '" + image_name +
                          "'");
    }

    /* Resource admission. */
    auto partition = mos.spm().partition(mos.partitionId());
    if (!partition.isOk())
        return partition.status();
    if (memUsed + mf.memoryBytes > partition.value()->memBytes)
        return Status(ErrorCode::ResourceExhausted,
                      "manifest memory quota exceeds partition "
                      "budget");

    auto runtime = makeRuntime(mf.deviceType);
    if (!runtime.isOk())
        return runtime.status();

    /* Ownership: Diffie-Hellman with the creator (§IV-A). */
    hw::Platform &plat = mos.spm().monitor().platform();
    Bytes seed = toBytes("enclave-dh:");
    Bytes owner_bytes = owner_pub.toBytes();
    seed.insert(seed.end(), owner_bytes.begin(), owner_bytes.end());
    seed.push_back(static_cast<uint8_t>(nextEnclaveId));
    seed.push_back(static_cast<uint8_t>(mos.partitionId()));
    crypto::KeyPair enclave_keys = crypto::deriveKeyPair(seed);
    Bytes secret = crypto::dhSharedSecret(enclave_keys.priv,
                                          owner_pub);
    plat.clock().advance(plat.costs().dhNs);

    Status created = runtime.value()->meCreate(image);
    if (!created.isOk())
        return created;

    Eid eid = makeEid(mos.partitionId(), nextEnclaveId++);
    crypto::Sha256 measurement;
    measurement.update(crypto::digestToBytes(mf.measure()));
    measurement.update(crypto::digestToBytes(image_hash));
    plat.clock().advance(static_cast<SimTime>(
        (manifest_json.size() + image.size()) *
        plat.costs().shaNsPerByte));

    enclaves[eid] = std::make_unique<MicroEnclave>(
        eid, mf, measurement.finalize(), std::move(runtime.value()),
        secret, owner_pub);
    memQuota[eid] = mf.memoryBytes;
    memUsed += mf.memoryBytes;
    lastNonce[eid] = 0;
    return EnclaveCreated{eid, enclave_keys.pub};
}

Result<EnclaveCreated>
EnclaveManager::createFromRecord(const ModuleRecord &record,
                                 const crypto::PublicKey &owner_pub)
{
    if (!mos.spm().validateMosId(mos.partitionId()))
        return Status(ErrorCode::InvalidState,
                      "partition not ready (failed or rebooting)");
    mos.tick();
    if (nextEnclaveId > kEnclaveIdMask)
        return Status(ErrorCode::ResourceExhausted,
                      "enclave id space exhausted on partition " +
                      std::to_string(mos.partitionId()));

    const Manifest &mf = record.manifest;
    auto partition = mos.spm().partition(mos.partitionId());
    if (!partition.isOk())
        return partition.status();
    if (memUsed + mf.memoryBytes > partition.value()->memBytes)
        return Status(ErrorCode::ResourceExhausted,
                      "manifest memory quota exceeds partition "
                      "budget");

    auto runtime = makeRuntime(mf.deviceType);
    if (!runtime.isOk())
        return runtime.status();

    hw::Platform &plat = mos.spm().monitor().platform();
    Bytes seed = toBytes("enclave-dh:");
    Bytes owner_bytes = owner_pub.toBytes();
    seed.insert(seed.end(), owner_bytes.begin(), owner_bytes.end());
    seed.push_back(static_cast<uint8_t>(nextEnclaveId));
    seed.push_back(static_cast<uint8_t>(mos.partitionId()));
    crypto::KeyPair enclave_keys = crypto::deriveKeyPair(seed);
    Bytes secret = crypto::dhSharedSecret(enclave_keys.priv,
                                          owner_pub);
    plat.clock().advance(plat.costs().dhNs);

    Status created = runtime.value()->meCreate(record.image);
    if (!created.isOk())
        return created;

    /* The record's measurement was derived at store admission over
     * the same bytes; reusing it skips the per-create SHA. */
    Eid eid = makeEid(mos.partitionId(), nextEnclaveId++);
    enclaves[eid] = std::make_unique<MicroEnclave>(
        eid, mf, record.measurement, std::move(runtime.value()),
        secret, owner_pub);
    memQuota[eid] = mf.memoryBytes;
    memUsed += mf.memoryBytes;
    lastNonce[eid] = 0;
    return EnclaveCreated{eid, enclave_keys.pub};
}

Result<EnclaveCreated>
EnclaveManager::createShell(const crypto::PublicKey &owner_pub,
                            uint64_t mem_bytes)
{
    if (!mos.spm().validateMosId(mos.partitionId()))
        return Status(ErrorCode::InvalidState,
                      "partition not ready (failed or rebooting)");
    mos.tick();
    if (nextEnclaveId > kEnclaveIdMask)
        return Status(ErrorCode::ResourceExhausted,
                      "enclave id space exhausted on partition " +
                      std::to_string(mos.partitionId()));

    /* A shell's manifest declares nothing: no mECall is callable
     * until a module is bound and the manifest swapped. */
    Manifest mf;
    mf.deviceType = mos.deviceType();
    mf.memoryBytes = mem_bytes;

    auto partition = mos.spm().partition(mos.partitionId());
    if (!partition.isOk())
        return partition.status();
    if (memUsed + mf.memoryBytes > partition.value()->memBytes)
        return Status(ErrorCode::ResourceExhausted,
                      "shell memory quota exceeds partition budget");

    auto runtime = makeRuntime(mf.deviceType);
    if (!runtime.isOk())
        return runtime.status();

    hw::Platform &plat = mos.spm().monitor().platform();
    Bytes seed = toBytes("enclave-dh:");
    Bytes owner_bytes = owner_pub.toBytes();
    seed.insert(seed.end(), owner_bytes.begin(), owner_bytes.end());
    seed.push_back(static_cast<uint8_t>(nextEnclaveId));
    seed.push_back(static_cast<uint8_t>(mos.partitionId()));
    crypto::KeyPair enclave_keys = crypto::deriveKeyPair(seed);
    Bytes secret = crypto::dhSharedSecret(enclave_keys.priv,
                                          owner_pub);
    plat.clock().advance(plat.costs().dhNs);

    Status created = runtime.value()->meCreateShell();
    if (!created.isOk())
        return created;

    /* Shell measurement: the empty manifest plus a zero image hash.
     * Attesting a shell proves "pre-attested empty executor on this
     * mOS"; the module's identity is pinned later by bindModule. */
    std::string shell_json = mf.toJson();
    crypto::Sha256 measurement;
    measurement.update(crypto::digestToBytes(mf.measure()));
    measurement.update(crypto::digestToBytes(crypto::Digest{}));
    plat.clock().advance(static_cast<SimTime>(
        shell_json.size() * plat.costs().shaNsPerByte));

    Eid eid = makeEid(mos.partitionId(), nextEnclaveId++);
    enclaves[eid] = std::make_unique<MicroEnclave>(
        eid, mf, measurement.finalize(), std::move(runtime.value()),
        secret, owner_pub);
    memQuota[eid] = mf.memoryBytes;
    memUsed += mf.memoryBytes;
    lastNonce[eid] = 0;
    return EnclaveCreated{eid, enclave_keys.pub};
}

Status
EnclaveManager::bindModule(Eid eid, const ModuleRecord &record,
                           uint64_t nonce, const Bytes &tag)
{
    if (!mos.spm().validateMosId(mos.partitionId()))
        return Status(ErrorCode::InvalidState,
                      "partition not ready (failed or rebooting)");
    mos.tick();
    auto it = enclaves.find(eid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound, "no such mEnclave");

    /* Only the owner may change what this enclave runs. */
    Bytes expected = authTag(it->second->secret(), eid, nonce,
                             "bind",
                             crypto::digestToBytes(record.digest));
    if (!constantTimeEqual(expected, tag))
        return Status(ErrorCode::AuthFailed,
                      "bind authentication failed");
    if (nonce <= lastNonce[eid])
        return Status(ErrorCode::IntegrityViolation,
                      "bind replay detected");
    lastNonce[eid] = nonce;

    if (record.manifest.deviceType != mos.deviceType())
        return Status(ErrorCode::InvalidArgument,
                      "module device_type '" +
                      record.manifest.deviceType +
                      "' does not match this mOS ('" +
                      mos.deviceType() + "')");

    /* Re-admission: the module's quota replaces the shell's. */
    auto partition = mos.spm().partition(mos.partitionId());
    if (!partition.isOk())
        return partition.status();
    uint64_t old_quota = memQuota[eid];
    if (memUsed - old_quota + record.manifest.memoryBytes >
        partition.value()->memBytes)
        return Status(ErrorCode::ResourceExhausted,
                      "module memory quota exceeds partition budget");

    Status bound = it->second->bind(record.manifest,
                                    record.measurement, record.image);
    if (!bound.isOk())
        return bound;
    memUsed = memUsed - old_quota + record.manifest.memoryBytes;
    memQuota[eid] = record.manifest.memoryBytes;
    return Status::ok();
}

Bytes
EnclaveManager::authTag(const Bytes &secret, Eid eid, uint64_t nonce,
                        const std::string &fn, const Bytes &args)
{
    ByteWriter w;
    w.putU32(eid);
    w.putU64(nonce);
    w.putString(fn);
    w.putBytes(args);
    return crypto::digestToBytes(crypto::hmacSha256(secret, w.take()));
}

Result<Bytes>
EnclaveManager::ecall(Eid eid, const std::string &fn,
                      const Bytes &args, uint64_t nonce,
                      const Bytes &tag)
{
    mos.tick();
    /* The SPM validates the mOS part of cross-mOS eids; a request
     * dispatched to the wrong partition is rejected here (malicious
     * dispatch defense, §III-B). */
    if (mosIdOf(eid) != mos.partitionId())
        return Status(ErrorCode::PermissionDenied,
                      "eid " + eidToString(eid) +
                      " does not belong to partition " +
                      std::to_string(mos.partitionId()));
    auto it = enclaves.find(eid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound, "no such mEnclave");

    hw::Platform &plat = mos.spm().monitor().platform();
    plat.clock().advance(static_cast<SimTime>(
        args.size() * plat.costs().hmacNsPerByte) + kNsPerUs);

    /* Only the owner (holder of secret_dhke) can invoke (§IV-A). */
    Bytes expected = authTag(it->second->secret(), eid, nonce, fn,
                             args);
    if (!constantTimeEqual(expected, tag))
        return Status(ErrorCode::AuthFailed,
                      "mECall authentication failed");
    /* Strictly increasing nonce: replayed requests rejected. */
    if (nonce <= lastNonce[eid])
        return Status(ErrorCode::IntegrityViolation,
                      "mECall replay detected");
    lastNonce[eid] = nonce;
    return it->second->invoke(fn, args);
}

Result<Bytes>
EnclaveManager::invokeLocal(Eid eid, const std::string &fn,
                            const Bytes &args)
{
    if (!mos.spm().validateMosId(mos.partitionId()))
        return Status(ErrorCode::PeerFailed,
                      "partition not ready (failed or rebooting)");
    mos.tick();
    if (mosIdOf(eid) != mos.partitionId())
        return Status(ErrorCode::PermissionDenied,
                      "eid belongs to another partition");
    auto it = enclaves.find(eid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound, "no such mEnclave");
    return it->second->invoke(fn, args);
}

Result<LocalAttestationReport>
EnclaveManager::localAttest(Eid eid, const Bytes &challenge)
{
    auto it = enclaves.find(eid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound, "no such mEnclave");

    LocalAttestationReport report;
    report.eid = eid;
    auto incarnation = mos.incarnation();
    if (!incarnation.isOk())
        return incarnation.status();
    report.partitionIncarnation = incarnation.value();
    report.enclaveMeasurement = it->second->measure();
    auto mos_hash = mos.mosMeasurement();
    if (!mos_hash.isOk())
        return mos_hash.status();
    report.mosMeasurement = mos_hash.value();
    report.challenge = challenge;

    const Bytes &lsk = mos.spm().monitor().localSealKey();
    report.mac = crypto::digestToBytes(
        crypto::hmacSha256(lsk, report.macInput()));
    hw::Platform &plat = mos.spm().monitor().platform();
    plat.clock().advance(10 * kNsPerUs);
    return report;
}

bool
EnclaveManager::verifyLocalReport(const LocalAttestationReport &report,
                                  const Bytes &lsk)
{
    Bytes expected = crypto::digestToBytes(
        crypto::hmacSha256(lsk, report.macInput()));
    return constantTimeEqual(expected, report.mac);
}

Status
EnclaveManager::destroy(Eid eid, uint64_t nonce, const Bytes &tag)
{
    auto it = enclaves.find(eid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound, "no such mEnclave");
    Bytes expected = authTag(it->second->secret(), eid, nonce,
                             "destroy", Bytes{});
    if (!constantTimeEqual(expected, tag))
        return Status(ErrorCode::AuthFailed,
                      "destroy authentication failed");
    if (nonce <= lastNonce[eid])
        return Status(ErrorCode::IntegrityViolation,
                      "destroy replay detected");
    /* The books are cleaned regardless -- a runtime that failed to
     * scrub must not leak quota -- but the caller learns about it:
     * swallowing the status here hid device-context teardown
     * failures from create/destroy churn. */
    Status destroyed = it->second->destroy(true);
    memUsed -= memQuota[eid];
    memQuota.erase(eid);
    lastNonce.erase(eid);
    enclaves.erase(it);
    return destroyed;
}

Result<Bytes>
EnclaveManager::checkpoint(Eid eid, uint64_t nonce, const Bytes &tag)
{
    auto it = enclaves.find(eid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound, "no such mEnclave");
    Bytes expected = authTag(it->second->secret(), eid, nonce,
                             "checkpoint", Bytes{});
    if (!constantTimeEqual(expected, tag))
        return Status(ErrorCode::AuthFailed,
                      "checkpoint authentication failed");
    if (nonce <= lastNonce[eid])
        return Status(ErrorCode::IntegrityViolation,
                      "checkpoint replay detected");
    lastNonce[eid] = nonce;

    auto snapshot = it->second->snapshot();
    if (!snapshot.isOk())
        return snapshot.status();
    hw::Platform &plat = mos.spm().monitor().platform();
    plat.clock().advance(static_cast<SimTime>(
        snapshot.value().size() *
        (plat.costs().aesNsPerByte + plat.costs().hmacNsPerByte)));
    return crypto::sealMessage(it->second->secret(), nonce,
                               snapshot.value());
}

Status
EnclaveManager::restore(Eid eid, uint64_t nonce, const Bytes &tag,
                        const Bytes &sealed)
{
    auto it = enclaves.find(eid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound, "no such mEnclave");
    Bytes expected = authTag(it->second->secret(), eid, nonce,
                             "restore", sealed);
    if (!constantTimeEqual(expected, tag))
        return Status(ErrorCode::AuthFailed,
                      "restore authentication failed");
    if (nonce <= lastNonce[eid])
        return Status(ErrorCode::IntegrityViolation,
                      "restore replay detected");
    lastNonce[eid] = nonce;

    auto snapshot = crypto::openMessage(it->second->secret(),
                                        sealed);
    if (!snapshot.isOk())
        return snapshot.status();
    hw::Platform &plat = mos.spm().monitor().platform();
    plat.clock().advance(static_cast<SimTime>(
        snapshot.value().size() *
        (plat.costs().aesNsPerByte + plat.costs().hmacNsPerByte)));
    return it->second->restoreState(snapshot.value());
}

Result<const MicroEnclave *>
EnclaveManager::enclave(Eid eid) const
{
    auto it = enclaves.find(eid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound, "no such mEnclave");
    return const_cast<const MicroEnclave *>(it->second.get());
}

Result<MicroEnclave *>
EnclaveManager::enclaveMutable(Eid eid)
{
    auto it = enclaves.find(eid);
    if (it == enclaves.end())
        return Status(ErrorCode::NotFound, "no such mEnclave");
    return it->second.get();
}

/* ------------------------------------------------------------------ */
/* MicroOS                                                             */
/* ------------------------------------------------------------------ */

MicroOS::MicroOS(tee::Spm &spm, tee::PartitionId partition_id,
                 const std::string &device_type,
                 const std::string &device_name)
    : partitionManager(spm), pid(partition_id), devType(device_type),
      devName(device_name), shim(spm, partition_id)
{
    if (device_type == "cpu") {
        halImpl = std::make_unique<mos::CpuHal>(shim, device_name);
    } else if (device_type == "gpu") {
        halImpl = std::make_unique<mos::GpuHal>(shim, device_name);
    } else if (device_type == "npu") {
        halImpl = std::make_unique<mos::NpuHal>(shim, device_name);
    } else {
        fatal("unknown device type '" + device_type + "'");
    }
    manager = std::make_unique<EnclaveManager>(*this);
}

Result<crypto::Digest>
MicroOS::mosMeasurement() const
{
    auto p = partitionManager.partition(pid);
    if (!p.isOk())
        return p.status();
    return p.value()->mosHash;
}

Result<uint64_t>
MicroOS::incarnation() const
{
    auto p = partitionManager.partition(pid);
    if (!p.isOk())
        return p.status();
    return p.value()->incarnation;
}

Status
MicroOS::panic()
{
    return partitionManager.panic(pid);
}

void
MicroOS::onReboot()
{
    /* The reloaded mOS starts from scratch: fresh allocator, fresh
     * HAL (drivers re-probe, DMA staging remapped), fresh enclave
     * manager. */
    shim.resetAllocator();
    if (devType == "cpu")
        halImpl = std::make_unique<mos::CpuHal>(shim, devName);
    else if (devType == "gpu")
        halImpl = std::make_unique<mos::GpuHal>(shim, devName);
    else
        halImpl = std::make_unique<mos::NpuHal>(shim, devName);
    manager = std::make_unique<EnclaveManager>(*this);
}

} // namespace cronus::core
