#include "auto_partition.hh"

namespace cronus::core
{

bool
AutoPartitioner::cudaCallIsAsync(const std::string &fn)
{
    /* Launches and HtoD copies stream without waiting; DtoH and
     * explicit synchronization need results (§IV-C). Allocation
     * returns a value, so it is synchronous too. */
    return fn == "cuLaunchKernel" || fn == "cuMemcpyHtoD" ||
           fn == "cuMemFree";
}

namespace
{

std::string
manifestFor(const std::string &device_type,
            const std::vector<McallDecl> &calls,
            const std::map<std::string, Bytes> &images)
{
    Manifest m;
    m.deviceType = device_type;
    m.mEcalls = calls;
    m.memoryBytes = 4ull << 20;
    for (const auto &[name, bytes] : images)
        m.images[name] = crypto::digestHex(crypto::sha256(bytes));
    return m.toJson();
}

} // namespace

Result<PartitionPlan>
AutoPartitioner::partition(const MonolithicProgram &program)
{
    PartitionPlan plan;
    std::vector<McallDecl> cpu_calls, gpu_calls, npu_calls;
    auto add_unique = [](std::vector<McallDecl> &list,
                         const McallDecl &decl) {
        for (const auto &existing : list) {
            if (existing.name == decl.name)
                return;
        }
        list.push_back(decl);
    };

    for (const auto &op : program.ops) {
        switch (op.kind) {
          case MonoOp::Kind::Cpu:
            plan.needsCpu = true;
            add_unique(cpu_calls, {op.fn, false});
            break;
          case MonoOp::Kind::Cuda:
            plan.needsGpu = true;
            add_unique(gpu_calls, {op.fn, cudaCallIsAsync(op.fn)});
            break;
          case MonoOp::Kind::Npu:
            plan.needsNpu = true;
            add_unique(npu_calls, {op.fn, false});
            break;
        }
    }
    if (program.ops.empty())
        return Status(ErrorCode::InvalidArgument, "empty program");

    if (plan.needsCpu) {
        plan.cpuImageBytes = program.cpuImage.serialize();
        plan.cpuManifest = manifestFor(
            "cpu", cpu_calls,
            {{program.name + ".so", plan.cpuImageBytes}});
    }
    if (plan.needsGpu) {
        plan.gpuImageBytes = program.gpuImage.serialize();
        plan.gpuManifest = manifestFor(
            "gpu", gpu_calls,
            {{program.name + ".cubin", plan.gpuImageBytes}});
    }
    if (plan.needsNpu) {
        plan.npuManifest = manifestFor("npu", npu_calls, {});
    }
    return plan;
}

Result<AutoPartitioner::RunResult>
AutoPartitioner::run(CronusSystem &system,
                     const MonolithicProgram &program)
{
    auto plan = partition(program);
    if (!plan.isOk())
        return plan.status();
    const PartitionPlan &p = plan.value();

    RunResult result;
    std::optional<AppHandle> cpu, gpu, npu;
    std::unique_ptr<SrpcChannel> gpu_channel, npu_channel;

    if (p.needsCpu) {
        auto handle = system.createEnclave(
            p.cpuManifest, program.name + ".so", p.cpuImageBytes);
        if (!handle.isOk())
            return handle.status();
        cpu = handle.value();
    }
    if (p.needsGpu) {
        auto handle = system.createEnclave(
            p.gpuManifest, program.name + ".cubin", p.gpuImageBytes);
        if (!handle.isOk())
            return handle.status();
        gpu = handle.value();
        if (cpu.has_value()) {
            auto channel = system.connect(*cpu, *gpu);
            if (!channel.isOk())
                return channel.status();
            gpu_channel = std::move(channel.value());
        }
    }
    if (p.needsNpu) {
        auto handle = system.createEnclave(p.npuManifest, "",
                                           Bytes{});
        if (!handle.isOk())
            return handle.status();
        npu = handle.value();
        if (cpu.has_value()) {
            auto channel = system.connect(*cpu, *npu);
            if (!channel.isOk())
                return channel.status();
            npu_channel = std::move(channel.value());
        }
    }

    for (const auto &op : program.ops) {
        switch (op.kind) {
          case MonoOp::Kind::Cpu: {
            auto out = system.ecall(*cpu, op.fn, op.args);
            if (!out.isOk())
                return out.status();
            result.outputs.push_back(out.value());
            break;
          }
          case MonoOp::Kind::Cuda: {
            Result<Bytes> out =
                gpu_channel != nullptr
                    ? gpu_channel->call(op.fn, op.args)
                    : system.ecall(*gpu, op.fn, op.args);
            if (!out.isOk())
                return out.status();
            result.outputs.push_back(out.value());
            break;
          }
          case MonoOp::Kind::Npu: {
            Result<Bytes> out =
                npu_channel != nullptr
                    ? npu_channel->call(op.fn, op.args)
                    : system.ecall(*npu, op.fn, op.args);
            if (!out.isOk())
                return out.status();
            result.outputs.push_back(out.value());
            break;
          }
        }
    }

    if (gpu_channel != nullptr) {
        CRONUS_RETURN_IF_ERROR(gpu_channel->close());
        result.gpuStats = gpu_channel->stats();
    }
    if (npu_channel != nullptr) {
        CRONUS_RETURN_IF_ERROR(npu_channel->close());
        result.npuStats = npu_channel->stats();
    }
    return result;
}

} // namespace cronus::core
