/**
 * @file
 * Warm pool of pre-attested enclave shells.
 *
 * The cold-start pipeline -- create, remote-attest, connect (local
 * attestation + grant + dCheck + executor spawn) -- is paid per
 * enclave. The warm pool moves all of it to prefill time: shells are
 * created unbound, attested once (the signed report is cached), and
 * optionally pre-connected to a driver enclave over sRPC. A request
 * then *binds* a module-store record onto a free shell and goes
 * straight to work -- enclave-per-request semantics at bind cost.
 *
 * Trust argument (DESIGN.md §10): the shell's attestation proves the
 * platform closure (DT, mOS, empty executor) once; the module's
 * identity is the store measurement pinned at admission; bind is
 * owner-authenticated (HMAC with secret_dhke over the module
 * digest) and SPM-mediated. The pre-connected channel stays valid
 * across binds because dCheck proved ownership of secret_dhke,
 * which is a property of the shell, not of the bound module.
 * Recycling is confined to one owner's trust domain: the pool's
 * shells all belong to the pool's creator.
 */

#ifndef CRONUS_CORE_WARM_POOL_HH
#define CRONUS_CORE_WARM_POOL_HH

#include "system.hh"

namespace cronus::core
{

/** One pooled shell: handle + cached attestation (+ channel). */
struct WarmShell
{
    AppHandle handle;
    /** Attestation from prefill; acquire() reuses it instead of
     *  re-running the remote-attestation round trip. */
    SignedAttestationReport report;
    /** Pre-connected sRPC channel from the pool's driver enclave;
     *  null when the pool was prefilled without a driver. */
    std::unique_ptr<SrpcChannel> channel;
    /** Module currently bound (all-zero digest: none). Affinity
     *  reuse skips the bind when the digests match. */
    crypto::Digest boundDigest{};
    bool inUse = false;
};

class WarmPool
{
  public:
    struct Config
    {
        std::string deviceType = "gpu";
        /** Optional device pin ("gpu1"); empty lets the dispatcher
         *  place shells. */
        std::string deviceName;
        uint64_t shellMemBytes = 4ull << 20;
    };

    WarmPool(CronusSystem &system, Config config);

    /**
     * Create, attest and verify @p count shells. With @p driver
     * (a CPU enclave handle owned by the same application) each
     * shell is also pre-connected over sRPC, so acquire() skips the
     * per-request dCheck + grant + page-table setup too.
     */
    Status prefill(size_t count, const AppHandle *driver = nullptr);

    /**
     * Bind @p record onto a free shell and lease it out. A shell
     * whose previous lease bound the same digest is preferred and
     * skips the bind entirely. NotFound when the pool is empty,
     * ResourceExhausted when every shell is leased.
     */
    Result<WarmShell *> acquire(const ModuleRecord &record);

    /** Return a leased shell (binding is kept for affinity). */
    Status release(WarmShell *shell);

    size_t size() const { return shells.size(); }
    size_t available() const;

    StatGroup &statistics() { return stats; }

  private:
    CronusSystem &sys;
    Config cfg;
    std::vector<std::unique_ptr<WarmShell>> shells;
    StatGroup stats;
};

} // namespace cronus::core

#endif // CRONUS_CORE_WARM_POOL_HH
