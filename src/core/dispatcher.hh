/**
 * @file
 * Enclave Dispatcher (normal world, §III-A).
 *
 * Decides which partition handles an mEnclave request, and records
 * the device type/configuration, mOS image and usable resources of
 * each partition. The dispatcher is *untrusted*: the attack suite
 * installs a misrouting hook, and CRONUS's ownership checks must
 * catch requests dispatched to the wrong partition.
 */

#ifndef CRONUS_CORE_DISPATCHER_HH
#define CRONUS_CORE_DISPATCHER_HH

#include <functional>
#include <set>

#include "micro_enclave.hh"

namespace cronus::core
{

class EnclaveDispatcher
{
  public:
    /** Record a partition's mOS and its capabilities. */
    void registerPartition(MicroOS *os);

    /** Route a request by eid (normal path: by the mOS-id bits). */
    Result<MicroOS *> route(Eid eid);

    /** Pick a partition able to host a new @p device_type enclave.
     *  @p device_name optionally pins a specific device. */
    Result<MicroOS *> partitionFor(const std::string &device_type,
                                   const std::string &device_name = "");

    /** All registered partitions (introspection). */
    const std::vector<MicroOS *> &partitions() const
    {
        return registered;
    }

    /**
     * Mark/unmark a device as degraded (quarantined by the recovery
     * supervisor after exhausting its restart budget). Degraded
     * devices are skipped by partitionFor; pinning one by name
     * returns Degraded so the caller can surface GaveUp.
     */
    void setDegraded(const std::string &device_name, bool degraded)
    {
        if (degraded)
            degradedDevices.insert(device_name);
        else
            degradedDevices.erase(device_name);
    }
    bool isDegraded(const std::string &device_name) const
    {
        return degradedDevices.count(device_name) > 0;
    }

    /**
     * ATTACK HOOK: replace routing, emulating a malicious normal OS
     * dispatching requests to an incorrect partition (§III-B).
     */
    void setMisroute(std::function<MicroOS *(Eid)> hook)
    {
        misroute = std::move(hook);
    }

    /**
     * Observes every successful route decision (fault injection /
     * invariant auditing); called with the eid and the chosen mOS.
     */
    using RouteObserver = std::function<void(Eid, MicroOS *)>;
    void setRouteObserver(RouteObserver observer)
    {
        routeObserver = std::move(observer);
    }

    /**
     * Observes every successful placement decision made by
     * partitionFor() (the fuzzer records these in its decision
     * trace); called with the requested type/name and the chosen
     * mOS.
     */
    using PlacementObserver = std::function<void(
        const std::string & /*device_type*/,
        const std::string & /*device_name*/, MicroOS *)>;
    void setPlacementObserver(PlacementObserver observer)
    {
        placementObserver = std::move(observer);
    }

  private:
    std::vector<MicroOS *> registered;
    std::set<std::string> degradedDevices;
    std::function<MicroOS *(Eid)> misroute;
    RouteObserver routeObserver;
    PlacementObserver placementObserver;
};

} // namespace cronus::core

#endif // CRONUS_CORE_DISPATCHER_HH
