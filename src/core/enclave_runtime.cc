#include "enclave_runtime.hh"

#include "base/logging.hh"

namespace cronus::core
{

/* ------------------------------------------------------------------ */
/* CPU                                                                 */
/* ------------------------------------------------------------------ */

CpuFunctionRegistry &
CpuFunctionRegistry::instance()
{
    static CpuFunctionRegistry registry;
    return registry;
}

void
CpuFunctionRegistry::registerFunction(const std::string &name,
                                      CpuFunction fn)
{
    std::unique_lock<std::shared_mutex> lock(mu);
    functions.emplace(name, std::move(fn));
}

const CpuFunction *
CpuFunctionRegistry::find(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    auto it = functions.find(name);
    return it == functions.end() ? nullptr : &it->second;
}

bool
CpuFunctionRegistry::has(const std::string &name) const
{
    std::shared_lock<std::shared_mutex> lock(mu);
    return functions.count(name) > 0;
}

Bytes
CpuImage::serialize() const
{
    ByteWriter w;
    w.putU32(static_cast<uint32_t>(exports.size()));
    for (const auto &name : exports)
        w.putString(name);
    return w.take();
}

Result<CpuImage>
CpuImage::deserialize(const Bytes &data)
{
    ByteReader r(data);
    auto count = r.getU32();
    if (!count.isOk())
        return count.status();
    if (count.value() > 4096)
        return Status(ErrorCode::InvalidArgument,
                      "implausible export count");
    CpuImage image;
    for (uint32_t i = 0; i < count.value(); ++i) {
        auto name = r.getString();
        if (!name.isOk())
            return name.status();
        image.exports.push_back(name.value());
    }
    return image;
}

Status
CpuRuntime::meCreate(const Bytes &image)
{
    if (created)
        return Status(ErrorCode::InvalidState, "already created");
    auto parsed = CpuImage::deserialize(image);
    if (!parsed.isOk())
        return parsed.status();
    for (const auto &name : parsed.value().exports) {
        if (!CpuFunctionRegistry::instance().has(name))
            return Status(ErrorCode::NotFound,
                          "image exports unknown function '" + name +
                          "'");
        exports.insert(name);
    }
    auto ctx = cpuHal.createDeviceContext();
    if (!ctx.isOk())
        return ctx.status();
    deviceCtx = ctx.value();
    created = true;
    moduleBound = true;
    return Status::ok();
}

Status
CpuRuntime::meCreateShell()
{
    if (created)
        return Status(ErrorCode::InvalidState, "already created");
    auto ctx = cpuHal.createDeviceContext();
    if (!ctx.isOk())
        return ctx.status();
    deviceCtx = ctx.value();
    created = true;
    moduleBound = false;
    return Status::ok();
}

Status
CpuRuntime::meBind(const Bytes &image)
{
    if (!created)
        return Status(ErrorCode::InvalidState, "shell not created");
    auto parsed = CpuImage::deserialize(image);
    if (!parsed.isOk())
        return parsed.status();
    std::set<std::string> incoming;
    for (const auto &name : parsed.value().exports) {
        if (!CpuFunctionRegistry::instance().has(name))
            return Status(ErrorCode::NotFound,
                          "image exports unknown function '" + name +
                          "'");
        incoming.insert(name);
    }
    /* A (re)bound module starts from fresh state: enclave-per-
     * request semantics must not observe a previous binding's
     * key/value store. */
    exports = std::move(incoming);
    store.clear();
    moduleBound = true;
    return Status::ok();
}

Result<Bytes>
CpuRuntime::meCall(const std::string &fn, const Bytes &args)
{
    if (!created)
        return Status(ErrorCode::InvalidState, "enclave not created");
    if (!moduleBound)
        return Status(ErrorCode::InvalidState, "no module bound");
    if (!exports.count(fn))
        return Status(ErrorCode::NotFound,
                      "function '" + fn + "' not exported");
    const CpuFunction *body = CpuFunctionRegistry::instance().find(fn);
    CRONUS_ASSERT(body != nullptr, "registry lost function");

    CpuCallContext ctx{args, store, [this](uint64_t units) {
        return cpuHal.execute(deviceCtx, units, nullptr);
    }};
    return (*body)(ctx);
}

Result<Bytes>
CpuRuntime::meSnapshot()
{
    if (!created)
        return Status(ErrorCode::InvalidState, "not created");
    ByteWriter w;
    w.putU32(static_cast<uint32_t>(store.size()));
    for (const auto &[key, value] : store) {
        w.putString(key);
        w.putBytes(value);
    }
    return w.take();
}

Status
CpuRuntime::meRestore(const Bytes &snapshot)
{
    if (!created)
        return Status(ErrorCode::InvalidState, "not created");
    ByteReader r(snapshot);
    auto count = r.getU32();
    if (!count.isOk())
        return count.status();
    if (count.value() > (1u << 20))
        return Status(ErrorCode::InvalidArgument,
                      "implausible snapshot entry count");
    std::map<std::string, Bytes> restored;
    for (uint32_t i = 0; i < count.value(); ++i) {
        auto key = r.getString();
        if (!key.isOk())
            return key.status();
        auto value = r.getBytes();
        if (!value.isOk())
            return value.status();
        restored[key.value()] = value.value();
    }
    store = std::move(restored);
    return Status::ok();
}

Status
CpuRuntime::meDestroy(bool scrub)
{
    if (!created)
        return Status(ErrorCode::InvalidState, "not created");
    if (scrub)
        store.clear();
    created = false;
    return cpuHal.destroyDeviceContext(deviceCtx, scrub);
}

/* ------------------------------------------------------------------ */
/* CUDA                                                                */
/* ------------------------------------------------------------------ */

const std::vector<std::string> &
CudaRuntime::apiSurface()
{
    static const std::vector<std::string> api = {
        "cuMemAlloc",   "cuMemFree",        "cuMemcpyHtoD",
        "cuMemcpyDtoH", "cuLaunchKernel",   "cuCtxSynchronize",
    };
    return api;
}

Status
CudaRuntime::meCreate(const Bytes &image)
{
    if (created)
        return Status(ErrorCode::InvalidState, "already created");
    auto module = accel::GpuModuleImage::deserialize(image);
    if (!module.isOk())
        return module.status();
    auto ctx = gpuHal.createDeviceContext();
    if (!ctx.isOk())
        return ctx.status();
    deviceCtx = ctx.value();
    Status s = gpuHal.loadModule(deviceCtx, module.value());
    if (!s.isOk()) {
        gpuHal.destroyDeviceContext(deviceCtx, false);
        return s;
    }
    created = true;
    moduleBound = true;
    return Status::ok();
}

Status
CudaRuntime::meCreateShell()
{
    if (created)
        return Status(ErrorCode::InvalidState, "already created");
    auto ctx = gpuHal.createDeviceContext();
    if (!ctx.isOk())
        return ctx.status();
    deviceCtx = ctx.value();
    created = true;
    moduleBound = false;
    return Status::ok();
}

Status
CudaRuntime::meBind(const Bytes &image)
{
    if (!created)
        return Status(ErrorCode::InvalidState, "shell not created");
    auto module = accel::GpuModuleImage::deserialize(image);
    if (!module.isOk())
        return module.status();
    /* The context (bounce buffers, DMA mappings) survives the bind;
     * only the module's kernels are attached. The manager swaps the
     * manifest with the bind, so a previous binding's kernels fall
     * out of the callable surface even though the simulated context
     * keeps them loaded. */
    Status s = gpuHal.loadModule(deviceCtx, module.value());
    if (!s.isOk())
        return s;
    moduleBound = true;
    return Status::ok();
}

Bytes
CudaRuntime::encodeMemAlloc(uint64_t bytes)
{
    ByteWriter w;
    w.putU64(bytes);
    return w.take();
}

Bytes
CudaRuntime::encodeMemFree(uint64_t va)
{
    ByteWriter w;
    w.putU64(va);
    return w.take();
}

Bytes
CudaRuntime::encodeMemcpyHtoD(uint64_t va, const Bytes &data)
{
    ByteWriter w;
    w.putU64(va);
    w.putBytes(data);
    return w.take();
}

Bytes
CudaRuntime::encodeMemcpyDtoH(uint64_t va, uint64_t len)
{
    ByteWriter w;
    w.putU64(va);
    w.putU64(len);
    return w.take();
}

Bytes
CudaRuntime::encodeLaunchKernel(const std::string &kernel,
                                const std::vector<uint64_t> &args,
                                uint64_t work_items)
{
    ByteWriter w;
    w.putString(kernel);
    w.putU32(static_cast<uint32_t>(args.size()));
    for (uint64_t a : args)
        w.putU64(a);
    w.putU64(work_items);
    return w.take();
}

Result<uint64_t>
CudaRuntime::decodeU64Result(const Bytes &result)
{
    ByteReader r(result);
    return r.getU64();
}

Result<Bytes>
CudaRuntime::meCall(const std::string &fn, const Bytes &args)
{
    if (!created)
        return Status(ErrorCode::InvalidState, "enclave not created");
    if (!moduleBound)
        return Status(ErrorCode::InvalidState, "no module bound");
    ByteReader r(args);

    if (fn == "cuMemAlloc") {
        auto bytes = r.getU64();
        if (!bytes.isOk())
            return bytes.status();
        auto va = gpuHal.memAlloc(deviceCtx, bytes.value());
        if (!va.isOk())
            return va.status();
        ByteWriter w;
        w.putU64(va.value());
        return w.take();
    }
    if (fn == "cuMemFree") {
        auto va = r.getU64();
        if (!va.isOk())
            return va.status();
        CRONUS_RETURN_IF_ERROR(gpuHal.memFree(deviceCtx, va.value()));
        return Bytes{};
    }
    if (fn == "cuMemcpyHtoD") {
        auto va = r.getU64();
        if (!va.isOk())
            return va.status();
        auto data = r.getBytes();
        if (!data.isOk())
            return data.status();
        CRONUS_RETURN_IF_ERROR(
            gpuHal.memcpyHtoD(deviceCtx, va.value(), data.value()));
        return Bytes{};
    }
    if (fn == "cuMemcpyDtoH") {
        auto va = r.getU64();
        if (!va.isOk())
            return va.status();
        auto len = r.getU64();
        if (!len.isOk())
            return len.status();
        return gpuHal.memcpyDtoH(deviceCtx, va.value(), len.value());
    }
    if (fn == "cuLaunchKernel") {
        auto kernel = r.getString();
        if (!kernel.isOk())
            return kernel.status();
        auto nargs = r.getU32();
        if (!nargs.isOk())
            return nargs.status();
        if (nargs.value() > 64)
            return Status(ErrorCode::InvalidArgument,
                          "too many kernel arguments");
        std::vector<uint64_t> kargs;
        for (uint32_t i = 0; i < nargs.value(); ++i) {
            auto a = r.getU64();
            if (!a.isOk())
                return a.status();
            kargs.push_back(a.value());
        }
        auto work = r.getU64();
        if (!work.isOk())
            return work.status();
        CRONUS_RETURN_IF_ERROR(gpuHal.launchKernel(
            deviceCtx, kernel.value(), kargs, work.value()));
        return Bytes{};
    }
    if (fn == "cuCtxSynchronize") {
        CRONUS_RETURN_IF_ERROR(gpuHal.synchronize(deviceCtx));
        return Bytes{};
    }
    return Status(ErrorCode::NotFound,
                  "unknown CUDA mECall '" + fn + "'");
}

Result<Bytes>
CudaRuntime::meSnapshot()
{
    if (!created)
        return Status(ErrorCode::InvalidState, "not created");
    /* Loaded kernels are not part of the snapshot: meCreate reloads
     * the module, so only device memory needs capturing. */
    return gpuHal.snapshotContext(deviceCtx);
}

Status
CudaRuntime::meRestore(const Bytes &snapshot)
{
    if (!created)
        return Status(ErrorCode::InvalidState, "not created");
    return gpuHal.restoreContext(deviceCtx, snapshot);
}

Status
CudaRuntime::meDestroy(bool scrub)
{
    if (!created)
        return Status(ErrorCode::InvalidState, "not created");
    created = false;
    return gpuHal.destroyDeviceContext(deviceCtx, scrub);
}

/* ------------------------------------------------------------------ */
/* NPU                                                                 */
/* ------------------------------------------------------------------ */

Bytes
serializeNpuProgram(const accel::NpuProgram &program)
{
    ByteWriter w;
    w.putU32(static_cast<uint32_t>(program.insns.size()));
    for (const auto &insn : program.insns) {
        w.putU8(static_cast<uint8_t>(insn.op));
        w.putU32(insn.buffer);
        w.putU64(insn.dramOffset);
        w.putU64(insn.sramOffset);
        w.putU64(insn.length);
        w.putU8(static_cast<uint8_t>(insn.bank));
        w.putU32(insn.rows);
        w.putU32(insn.cols);
        w.putU32(insn.inner);
        w.putU8(insn.resetAccum ? 1 : 0);
        w.putU8(static_cast<uint8_t>(insn.aluOp));
        w.putU32(static_cast<uint32_t>(insn.imm));
        w.putU64(insn.aluElems);
    }
    return w.take();
}

Result<accel::NpuProgram>
deserializeNpuProgram(const Bytes &data)
{
    ByteReader r(data);
    auto count = r.getU32();
    if (!count.isOk())
        return count.status();
    if (count.value() > (1u << 20))
        return Status(ErrorCode::InvalidArgument,
                      "implausible instruction count");
    accel::NpuProgram program;
    for (uint32_t i = 0; i < count.value(); ++i) {
        accel::NpuInsn insn;
        auto op = r.getU8();
        if (!op.isOk())
            return op.status();
        if (op.value() > uint8_t(accel::NpuOp::Store))
            return Status(ErrorCode::InvalidArgument, "bad opcode");
        insn.op = static_cast<accel::NpuOp>(op.value());
        auto buffer = r.getU32();
        auto dram_off = r.getU64();
        auto sram_off = r.getU64();
        auto length = r.getU64();
        auto bank = r.getU8();
        auto rows = r.getU32();
        auto cols = r.getU32();
        auto inner = r.getU32();
        auto reset = r.getU8();
        auto alu_op = r.getU8();
        auto imm = r.getU32();
        auto alu_elems = r.getU64();
        if (!alu_elems.isOk())
            return alu_elems.status();
        if (bank.value() > uint8_t(accel::NpuBank::Accum) ||
            alu_op.value() > uint8_t(accel::NpuAluOp::MaxImm))
            return Status(ErrorCode::InvalidArgument,
                          "bad bank/alu op");
        insn.buffer = buffer.value();
        insn.dramOffset = dram_off.value();
        insn.sramOffset = sram_off.value();
        insn.length = length.value();
        insn.bank = static_cast<accel::NpuBank>(bank.value());
        insn.rows = rows.value();
        insn.cols = cols.value();
        insn.inner = inner.value();
        insn.resetAccum = reset.value() != 0;
        insn.aluOp = static_cast<accel::NpuAluOp>(alu_op.value());
        insn.imm = static_cast<int32_t>(imm.value());
        insn.aluElems = alu_elems.value();
        program.insns.push_back(insn);
    }
    return program;
}

const std::vector<std::string> &
NpuRuntime::apiSurface()
{
    static const std::vector<std::string> api = {
        "vtaAllocBuffer", "vtaWriteBuffer", "vtaReadBuffer", "vtaRun",
    };
    return api;
}

Status
NpuRuntime::meCreate(const Bytes &image)
{
    (void)image;  /* NPU programs arrive per-call; image may be null */
    if (created)
        return Status(ErrorCode::InvalidState, "already created");
    auto ctx = npuHal.createDeviceContext();
    if (!ctx.isOk())
        return ctx.status();
    deviceCtx = ctx.value();
    created = true;
    return Status::ok();
}

Status
NpuRuntime::meCreateShell()
{
    /* NPU programs arrive per call; a shell is a full create. */
    return meCreate(Bytes{});
}

Status
NpuRuntime::meBind(const Bytes &image)
{
    (void)image;  /* nothing to attach; programs arrive per call */
    if (!created)
        return Status(ErrorCode::InvalidState, "shell not created");
    return Status::ok();
}

Bytes
NpuRuntime::encodeAllocBuffer(uint64_t bytes)
{
    ByteWriter w;
    w.putU64(bytes);
    return w.take();
}

Bytes
NpuRuntime::encodeWriteBuffer(uint32_t buffer, uint64_t offset,
                              const Bytes &data)
{
    ByteWriter w;
    w.putU32(buffer);
    w.putU64(offset);
    w.putBytes(data);
    return w.take();
}

Bytes
NpuRuntime::encodeReadBuffer(uint32_t buffer, uint64_t offset,
                             uint64_t len)
{
    ByteWriter w;
    w.putU32(buffer);
    w.putU64(offset);
    w.putU64(len);
    return w.take();
}

Bytes
NpuRuntime::encodeRun(const accel::NpuProgram &program)
{
    ByteWriter w;
    w.putBytes(serializeNpuProgram(program));
    return w.take();
}

Result<Bytes>
NpuRuntime::meCall(const std::string &fn, const Bytes &args)
{
    if (!created)
        return Status(ErrorCode::InvalidState, "enclave not created");
    ByteReader r(args);

    if (fn == "vtaAllocBuffer") {
        auto bytes = r.getU64();
        if (!bytes.isOk())
            return bytes.status();
        auto buf = npuHal.allocBuffer(deviceCtx, bytes.value());
        if (!buf.isOk())
            return buf.status();
        ByteWriter w;
        w.putU32(buf.value());
        return w.take();
    }
    if (fn == "vtaWriteBuffer") {
        auto buffer = r.getU32();
        if (!buffer.isOk())
            return buffer.status();
        auto offset = r.getU64();
        if (!offset.isOk())
            return offset.status();
        auto data = r.getBytes();
        if (!data.isOk())
            return data.status();
        CRONUS_RETURN_IF_ERROR(npuHal.writeBuffer(
            deviceCtx, buffer.value(), offset.value(), data.value()));
        return Bytes{};
    }
    if (fn == "vtaReadBuffer") {
        auto buffer = r.getU32();
        if (!buffer.isOk())
            return buffer.status();
        auto offset = r.getU64();
        if (!offset.isOk())
            return offset.status();
        auto len = r.getU64();
        if (!len.isOk())
            return len.status();
        return npuHal.readBuffer(deviceCtx, buffer.value(),
                                 offset.value(), len.value());
    }
    if (fn == "vtaRun") {
        auto blob = r.getBytes();
        if (!blob.isOk())
            return blob.status();
        auto program = deserializeNpuProgram(blob.value());
        if (!program.isOk())
            return program.status();
        CRONUS_RETURN_IF_ERROR(
            npuHal.runProgram(deviceCtx, program.value()));
        return Bytes{};
    }
    return Status(ErrorCode::NotFound,
                  "unknown NPU mECall '" + fn + "'");
}

Status
NpuRuntime::meDestroy(bool scrub)
{
    if (!created)
        return Status(ErrorCode::InvalidState, "not created");
    created = false;
    return npuHal.destroyDeviceContext(deviceCtx, scrub);
}

} // namespace cronus::core
