#include "keys.hh"

#include "base/logging.hh"

namespace cronus::crypto
{

const U256 &
groupPrime()
{
    /* p = 2^255 - 19 */
    static const U256 p = U256::fromHex(
        "7fffffffffffffffffffffffffffffff"
        "ffffffffffffffffffffffffffffffed").value();
    return p;
}

const U256 &
groupOrder()
{
    /* exponents live mod p - 1 */
    static const U256 order = groupPrime() - U256(1);
    return order;
}

const U256 &
groupGenerator()
{
    static const U256 g(2);
    return g;
}

namespace
{

/** Map arbitrary bytes to a nonzero exponent mod the group order. */
U256
hashToScalar(const Bytes &data)
{
    Digest d = sha256(data);
    U256 v = U256::fromBytesBE(digestToBytes(d));
    v = U256::reduce(v, groupOrder());
    if (v.isZero())
        v = U256(1);
    return v;
}

} // namespace

KeyPair
generateKeyPair(Rng &rng)
{
    Bytes seed(32);
    rng.fill(seed);
    return deriveKeyPair(seed);
}

KeyPair
deriveKeyPair(const Bytes &seed)
{
    Bytes material = toBytes("cronus-keygen:");
    material.insert(material.end(), seed.begin(), seed.end());
    U256 x = hashToScalar(material);
    U256 y = U256::powMod(groupGenerator(), x, groupPrime());
    return KeyPair{PrivateKey{x}, PublicKey{y}};
}

Bytes
Signature::toBytes() const
{
    ByteWriter w;
    w.putBytes(commitment.toBytesBE());
    w.putBytes(response.toBytesBE());
    return w.take();
}

Result<Signature>
Signature::fromBytes(const Bytes &b)
{
    ByteReader r(b);
    auto commitment = r.getBytes();
    if (!commitment.isOk())
        return commitment.status();
    auto response = r.getBytes();
    if (!response.isOk())
        return response.status();
    if (commitment.value().size() != 32 ||
        response.value().size() != 32)
        return Status(ErrorCode::InvalidArgument,
                      "bad signature encoding");
    return Signature{U256::fromBytesBE(commitment.value()),
                     U256::fromBytesBE(response.value())};
}

namespace
{

/** Fiat-Shamir challenge e = H(R || pub || m) mod order. */
U256
challenge(const U256 &commitment, const PublicKey &pub,
          const Bytes &message)
{
    Bytes data = toBytes("cronus-schnorr:");
    Bytes r_bytes = commitment.toBytesBE();
    Bytes p_bytes = pub.element.toBytesBE();
    data.insert(data.end(), r_bytes.begin(), r_bytes.end());
    data.insert(data.end(), p_bytes.begin(), p_bytes.end());
    data.insert(data.end(), message.begin(), message.end());
    return hashToScalar(data);
}

} // namespace

Signature
sign(const PrivateKey &key, const Bytes &message)
{
    /* Deterministic nonce k = H(x || m). */
    Bytes nonce_material = toBytes("cronus-nonce:");
    Bytes x_bytes = key.scalar.toBytesBE();
    nonce_material.insert(nonce_material.end(), x_bytes.begin(),
                          x_bytes.end());
    nonce_material.insert(nonce_material.end(), message.begin(),
                          message.end());
    U256 k = hashToScalar(nonce_material);

    U256 commitment = U256::powMod(groupGenerator(), k, groupPrime());
    PublicKey pub{
        U256::powMod(groupGenerator(), key.scalar, groupPrime())};
    U256 e = challenge(commitment, pub, message);
    /* s = k + e * x mod order */
    U256 ex = U256::mulMod(e, key.scalar, groupOrder());
    U256 s = U256::addMod(U256::reduce(k, groupOrder()), ex,
                          groupOrder());
    return Signature{commitment, s};
}

bool
verify(const PublicKey &key, const Bytes &message,
       const Signature &sig)
{
    if (sig.commitment.isZero() || key.element.isZero())
        return false;
    U256 e = challenge(sig.commitment, key, message);
    /* g^s ?= R * y^e (mod p) */
    U256 lhs = U256::powMod(groupGenerator(), sig.response,
                            groupPrime());
    U256 ye = U256::powMod(key.element, e, groupPrime());
    U256 rhs = U256::mulMod(U256::reduce(sig.commitment, groupPrime()),
                            ye, groupPrime());
    return lhs == rhs;
}

Bytes
dhSharedSecret(const PrivateKey &mine, const PublicKey &theirs)
{
    U256 shared = U256::powMod(theirs.element, mine.scalar,
                               groupPrime());
    Bytes material = toBytes("cronus-dh:");
    Bytes s_bytes = shared.toBytesBE();
    material.insert(material.end(), s_bytes.begin(), s_bytes.end());
    return digestToBytes(sha256(material));
}

} // namespace cronus::crypto
