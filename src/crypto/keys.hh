/**
 * @file
 * Key types, Diffie-Hellman key agreement and Schnorr signatures.
 *
 * The group is the multiplicative group mod p = 2^255 - 19 with
 * generator g = 2. Signatures are classic Schnorr with a
 * deterministic (hash-derived) nonce; DH is textbook finite-field DH.
 * These are real algorithms at small-but-real parameters -- enough
 * that any bit of tampering with signed material is detected by
 * tests, which is the property CRONUS's protocols rely on.
 */

#ifndef CRONUS_CRYPTO_KEYS_HH
#define CRONUS_CRYPTO_KEYS_HH

#include <string>

#include "base/bytes.hh"
#include "base/rng.hh"
#include "sha256.hh"
#include "uint256.hh"

namespace cronus::crypto
{

/** The field prime p = 2^255 - 19. */
const U256 &groupPrime();
/** Group order used for exponents (p - 1). */
const U256 &groupOrder();
/** Generator g = 2. */
const U256 &groupGenerator();

/** A private scalar. */
struct PrivateKey
{
    U256 scalar;

    bool operator==(const PrivateKey &o) const
    {
        return scalar == o.scalar;
    }
};

/** A public group element g^x. */
struct PublicKey
{
    U256 element;

    Bytes toBytes() const { return element.toBytesBE(); }
    static PublicKey fromBytes(const Bytes &b)
    {
        return PublicKey{U256::fromBytesBE(b)};
    }

    bool operator==(const PublicKey &o) const
    {
        return element == o.element;
    }
};

/** A key pair. */
struct KeyPair
{
    PrivateKey priv;
    PublicKey pub;
};

/** Schnorr signature (commitment R, response s). */
struct Signature
{
    U256 commitment;
    U256 response;

    Bytes toBytes() const;
    static Result<Signature> fromBytes(const Bytes &b);

    bool operator==(const Signature &o) const
    {
        return commitment == o.commitment && response == o.response;
    }
};

/** Generate a key pair from deterministic randomness. */
KeyPair generateKeyPair(Rng &rng);

/** Derive a key pair from seed bytes (for ROM-stored root keys). */
KeyPair deriveKeyPair(const Bytes &seed);

/** Sign @p message with @p key (deterministic nonce). */
Signature sign(const PrivateKey &key, const Bytes &message);

/** Verify a signature. */
bool verify(const PublicKey &key, const Bytes &message,
            const Signature &sig);

/** Diffie-Hellman: derive the shared secret from our private key and
 *  the peer's public element. Returned as a 32-byte symmetric key
 *  (hash of the shared group element). */
Bytes dhSharedSecret(const PrivateKey &mine, const PublicKey &theirs);

} // namespace cronus::crypto

#endif // CRONUS_CRYPTO_KEYS_HH
