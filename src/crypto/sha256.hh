/**
 * @file
 * SHA-256 (FIPS 180-4) implemented from scratch.
 *
 * Used for all measurements (mOS/mEnclave image hashes), HMAC, and
 * as the hash inside Schnorr signatures.
 */

#ifndef CRONUS_CRYPTO_SHA256_HH
#define CRONUS_CRYPTO_SHA256_HH

#include <array>
#include <cstdint>
#include <string>

#include "base/bytes.hh"

namespace cronus::crypto
{

/** A 32-byte digest. */
using Digest = std::array<uint8_t, 32>;

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256();

    void update(const uint8_t *data, size_t len);
    void update(const Bytes &data)
    {
        update(data.data(), data.size());
    }
    void update(const std::string &s)
    {
        update(reinterpret_cast<const uint8_t *>(s.data()), s.size());
    }

    /** Finalize; the context must not be reused afterwards. */
    Digest finalize();

  private:
    void processBlock(const uint8_t *block);

    uint32_t state[8];
    uint64_t totalLen = 0;
    uint8_t buffer[64];
    size_t bufferLen = 0;
    bool finalized = false;
};

/** One-shot helpers. */
Digest sha256(const Bytes &data);
Digest sha256(const std::string &data);

/** Digest as a Bytes vector. */
Bytes digestToBytes(const Digest &d);

/** Digest rendered as lowercase hex. */
std::string digestHex(const Digest &d);

/** HMAC-SHA256 (RFC 2104). */
Digest hmacSha256(const Bytes &key, const Bytes &message);

} // namespace cronus::crypto

#endif // CRONUS_CRYPTO_SHA256_HH
