/**
 * @file
 * Fixed-width 256-bit unsigned integer with modular arithmetic.
 *
 * Backs the finite-field Diffie-Hellman exchange and Schnorr
 * signatures used for mEnclave ownership (secret_dhke) and
 * attestation. 256-bit parameters are small for production but large
 * enough that the protocol logic (and tamper detection) is real.
 */

#ifndef CRONUS_CRYPTO_UINT256_HH
#define CRONUS_CRYPTO_UINT256_HH

#include <array>
#include <cstdint>
#include <string>

#include "base/bytes.hh"

namespace cronus::crypto
{

/** 256-bit unsigned integer, little-endian 64-bit limbs. */
class U256
{
  public:
    U256() : limbs{0, 0, 0, 0} {}
    U256(uint64_t v) : limbs{v, 0, 0, 0} {}

    static U256 fromBytesBE(const Bytes &bytes);
    static Result<U256> fromHex(const std::string &hex);

    Bytes toBytesBE() const;
    std::string toHex() const;

    bool isZero() const;
    bool bit(int i) const;
    /** Index of highest set bit, or -1 for zero. */
    int highestBit() const;

    bool operator==(const U256 &o) const { return limbs == o.limbs; }
    bool operator!=(const U256 &o) const { return !(*this == o); }
    bool operator<(const U256 &o) const;
    bool operator>=(const U256 &o) const { return !(*this < o); }

    /** Wrapping add/sub (mod 2^256); carry/borrow returned. */
    U256 addWithCarry(const U256 &o, uint64_t &carry_out) const;
    U256 subWithBorrow(const U256 &o, uint64_t &borrow_out) const;

    U256 operator+(const U256 &o) const;
    U256 operator-(const U256 &o) const;

    /** Modular arithmetic; operands must already be < mod. */
    static U256 addMod(const U256 &a, const U256 &b, const U256 &mod);
    static U256 subMod(const U256 &a, const U256 &b, const U256 &mod);
    static U256 mulMod(const U256 &a, const U256 &b, const U256 &mod);
    static U256 powMod(const U256 &base, const U256 &exp,
                       const U256 &mod);
    /** Reduce an arbitrary value below @p mod. */
    static U256 reduce(const U256 &a, const U256 &mod);

    const std::array<uint64_t, 4> &raw() const { return limbs; }

  private:
    std::array<uint64_t, 4> limbs;
};

} // namespace cronus::crypto

#endif // CRONUS_CRYPTO_UINT256_HH
