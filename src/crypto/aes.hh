/**
 * @file
 * AES-128 block cipher and CTR-mode stream encryption, from scratch.
 *
 * Used by the HIX-TrustZone baseline, which encrypts every RPC that
 * crosses untrusted memory, and by CRONUS for sealing data that must
 * transit the normal world.
 */

#ifndef CRONUS_CRYPTO_AES_HH
#define CRONUS_CRYPTO_AES_HH

#include <array>
#include <cstdint>

#include "base/bytes.hh"

namespace cronus::crypto
{

using AesKey = std::array<uint8_t, 16>;
using AesBlock = std::array<uint8_t, 16>;

/** AES-128 with a precomputed key schedule. */
class Aes128
{
  public:
    explicit Aes128(const AesKey &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(uint8_t block[16]) const;

    /**
     * CTR mode: encrypt/decrypt (symmetric) @p data with @p nonce.
     * The 16-byte counter block is nonce(8) || counter(8, BE).
     */
    Bytes ctr(const Bytes &data, uint64_t nonce) const;

  private:
    /* 11 round keys of 16 bytes. */
    std::array<uint8_t, 176> roundKeys;
};

/** Derive an AES key from a 32-byte shared secret. */
AesKey aesKeyFromSecret(const Bytes &secret);

/**
 * Authenticated encryption: AES-128-CTR + HMAC-SHA256 tag over
 * (nonce || ciphertext), encrypt-then-MAC. Returns
 * nonce(8) || ciphertext || tag(32).
 */
Bytes sealMessage(const Bytes &secret, uint64_t nonce,
                  const Bytes &plaintext);

/** Verify and decrypt a sealed message. */
Result<Bytes> openMessage(const Bytes &secret, const Bytes &sealed);

} // namespace cronus::crypto

#endif // CRONUS_CRYPTO_AES_HH
