#include "uint256.hh"

#include "base/logging.hh"

namespace cronus::crypto
{

namespace
{

/* 512-bit scratch values as 8 little-endian 64-bit limbs. */
using Limbs8 = std::array<uint64_t, 8>;

int
highestBit512(const Limbs8 &v)
{
    for (int limb = 7; limb >= 0; --limb) {
        if (v[limb] != 0) {
            int bit = 63;
            while (!((v[limb] >> bit) & 1))
                --bit;
            return limb * 64 + bit;
        }
    }
    return -1;
}

int
compare512(const Limbs8 &a, const Limbs8 &b)
{
    for (int i = 7; i >= 0; --i) {
        if (a[i] != b[i])
            return a[i] < b[i] ? -1 : 1;
    }
    return 0;
}

void
sub512(Limbs8 &a, const Limbs8 &b)
{
    uint64_t borrow = 0;
    for (int i = 0; i < 8; ++i) {
        unsigned __int128 diff =
            (unsigned __int128)a[i] - b[i] - borrow;
        a[i] = static_cast<uint64_t>(diff);
        borrow = (diff >> 64) ? 1 : 0;
    }
}

Limbs8
shiftLeft512(const Limbs8 &v, int bits)
{
    Limbs8 out{};
    int limb_shift = bits / 64;
    int bit_shift = bits % 64;
    for (int i = 7; i >= 0; --i) {
        uint64_t value = 0;
        int src = i - limb_shift;
        if (src >= 0)
            value = v[src] << bit_shift;
        if (bit_shift != 0 && src - 1 >= 0)
            value |= v[src - 1] >> (64 - bit_shift);
        out[i] = value;
    }
    return out;
}

/** Reduce a 512-bit value modulo a 256-bit modulus (binary). */
U256
reduce512(Limbs8 value, const U256 &mod)
{
    CRONUS_ASSERT(!mod.isZero(), "reduce512 by zero");
    Limbs8 m{};
    for (int i = 0; i < 4; ++i)
        m[i] = mod.raw()[i];

    int vb = highestBit512(value);
    int mb = highestBit512(m);
    for (int shift = vb - mb; shift >= 0; --shift) {
        Limbs8 shifted = shiftLeft512(m, shift);
        if (compare512(value, shifted) >= 0)
            sub512(value, shifted);
    }

    U256 out;
    Bytes be(32);
    for (int i = 0; i < 4; ++i) {
        for (int b = 0; b < 8; ++b)
            be[31 - (i * 8 + b)] = (value[i] >> (8 * b)) & 0xff;
    }
    return U256::fromBytesBE(be);
}

} // namespace

U256
U256::fromBytesBE(const Bytes &bytes)
{
    CRONUS_ASSERT(bytes.size() <= 32, "U256::fromBytesBE > 32 bytes");
    U256 out;
    size_t n = bytes.size();
    for (size_t i = 0; i < n; ++i) {
        /* bytes[n-1-i] is the i-th least significant byte. */
        out.limbs[i / 8] |=
            uint64_t(bytes[n - 1 - i]) << (8 * (i % 8));
    }
    return out;
}

Result<U256>
U256::fromHex(const std::string &hex)
{
    auto bytes = cronus::fromHex(hex);
    if (!bytes.isOk())
        return bytes.status();
    if (bytes.value().size() > 32)
        return Status(ErrorCode::InvalidArgument,
                      "hex longer than 256 bits");
    return fromBytesBE(bytes.value());
}

Bytes
U256::toBytesBE() const
{
    Bytes out(32);
    for (int i = 0; i < 32; ++i)
        out[31 - i] = (limbs[i / 8] >> (8 * (i % 8))) & 0xff;
    return out;
}

std::string
U256::toHex() const
{
    return cronus::toHex(toBytesBE());
}

bool
U256::isZero() const
{
    return limbs[0] == 0 && limbs[1] == 0 && limbs[2] == 0 &&
           limbs[3] == 0;
}

bool
U256::bit(int i) const
{
    CRONUS_ASSERT(i >= 0 && i < 256, "U256::bit out of range");
    return (limbs[i / 64] >> (i % 64)) & 1;
}

int
U256::highestBit() const
{
    for (int limb = 3; limb >= 0; --limb) {
        if (limbs[limb] != 0) {
            int bit = 63;
            while (!((limbs[limb] >> bit) & 1))
                --bit;
            return limb * 64 + bit;
        }
    }
    return -1;
}

bool
U256::operator<(const U256 &o) const
{
    for (int i = 3; i >= 0; --i) {
        if (limbs[i] != o.limbs[i])
            return limbs[i] < o.limbs[i];
    }
    return false;
}

U256
U256::addWithCarry(const U256 &o, uint64_t &carry_out) const
{
    U256 out;
    uint64_t carry = 0;
    for (int i = 0; i < 4; ++i) {
        unsigned __int128 sum =
            (unsigned __int128)limbs[i] + o.limbs[i] + carry;
        out.limbs[i] = static_cast<uint64_t>(sum);
        carry = static_cast<uint64_t>(sum >> 64);
    }
    carry_out = carry;
    return out;
}

U256
U256::subWithBorrow(const U256 &o, uint64_t &borrow_out) const
{
    U256 out;
    uint64_t borrow = 0;
    for (int i = 0; i < 4; ++i) {
        unsigned __int128 diff =
            (unsigned __int128)limbs[i] - o.limbs[i] - borrow;
        out.limbs[i] = static_cast<uint64_t>(diff);
        borrow = (diff >> 64) ? 1 : 0;
    }
    borrow_out = borrow;
    return out;
}

U256
U256::operator+(const U256 &o) const
{
    uint64_t carry;
    return addWithCarry(o, carry);
}

U256
U256::operator-(const U256 &o) const
{
    uint64_t borrow;
    return subWithBorrow(o, borrow);
}

U256
U256::addMod(const U256 &a, const U256 &b, const U256 &mod)
{
    uint64_t carry;
    U256 sum = a.addWithCarry(b, carry);
    if (carry || sum >= mod)
        sum = sum - mod;
    return sum;
}

U256
U256::subMod(const U256 &a, const U256 &b, const U256 &mod)
{
    uint64_t borrow;
    U256 diff = a.subWithBorrow(b, borrow);
    if (borrow)
        diff = diff + mod;
    return diff;
}

U256
U256::mulMod(const U256 &a, const U256 &b, const U256 &mod)
{
    Limbs8 product{};
    for (int i = 0; i < 4; ++i) {
        uint64_t carry = 0;
        for (int j = 0; j < 4; ++j) {
            unsigned __int128 cur =
                (unsigned __int128)a.raw()[i] * b.raw()[j] +
                product[i + j] + carry;
            product[i + j] = static_cast<uint64_t>(cur);
            carry = static_cast<uint64_t>(cur >> 64);
        }
        product[i + 4] += carry;
    }
    return reduce512(product, mod);
}

U256
U256::powMod(const U256 &base, const U256 &exp, const U256 &mod)
{
    CRONUS_ASSERT(!mod.isZero(), "powMod by zero modulus");
    U256 result(1);
    result = reduce(result, mod);
    U256 b = reduce(base, mod);
    int top = exp.highestBit();
    for (int i = top; i >= 0; --i) {
        result = mulMod(result, result, mod);
        if (exp.bit(i))
            result = mulMod(result, b, mod);
    }
    return result;
}

U256
U256::reduce(const U256 &a, const U256 &mod)
{
    Limbs8 wide{};
    for (int i = 0; i < 4; ++i)
        wide[i] = a.raw()[i];
    return reduce512(wide, mod);
}

} // namespace cronus::crypto
