#include "metrics.hh"

#include <algorithm>

namespace cronus::obs
{

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

std::string
MetricsRegistry::key(const std::string &name,
                     const MetricLabels &labels)
{
    if (labels.empty())
        return name;
    /* Dedupe duplicate label names, last occurrence wins, *before*
     * canonical ordering: sorting alone would make {a=1,a=2} and
     * {a=2,a=1} collapse to the same key and silently alias two
     * distinct instruments. The map also yields the sorted order. */
    std::map<std::string, std::string> canonical;
    for (const auto &[k, v] : labels)
        canonical[k] = v;
    std::string out = name + "{";
    bool first = true;
    for (const auto &[k, v] : canonical) {
        if (!first)
            out += ",";
        first = false;
        out += k + "=" + v;
    }
    out += "}";
    return out;
}

MetricsRegistry::Instrument &
MetricsRegistry::resolve(const std::string &name,
                         const MetricLabels &labels, Kind kind,
                         SimTime bucket_ns)
{
    std::string k = key(name, labels);
    auto it = instruments.find(k);
    if (it == instruments.end()) {
        it = instruments
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(k),
                          std::forward_as_tuple(kind, bucket_ns))
                 .first;
        return it->second;
    }
    if (it->second.kind != kind) {
        /* Kind collision: hand back a private instrument so the
         * caller neither aliases nor corrupts the registered one. */
        ++kindCollisions;
        orphans.emplace_back(kind, bucket_ns);
        return orphans.back();
    }
    return it->second;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const MetricLabels &labels)
{
    return resolve(name, labels, Kind::Counter, 0).counter;
}

Distribution &
MetricsRegistry::distribution(const std::string &name,
                              const MetricLabels &labels)
{
    return resolve(name, labels, Kind::Distribution, 0).distribution;
}

ThroughputSeries &
MetricsRegistry::series(const std::string &name,
                        const MetricLabels &labels, SimTime bucket_ns)
{
    return resolve(name, labels, Kind::Series, bucket_ns).series;
}

void
MetricsRegistry::addSource(const std::string &name, Source source)
{
    sources[name] = std::move(source);
}

void
MetricsRegistry::removeSource(const std::string &name)
{
    sources.erase(name);
}

JsonValue
MetricsRegistry::snapshot() const
{
    JsonObject counters, distributions, seriesOut;
    for (const auto &[k, inst] : instruments) {
        switch (inst.kind) {
          case Kind::Counter:
            counters[k] =
                static_cast<int64_t>(inst.counter.value());
            break;
          case Kind::Distribution: {
            JsonObject d;
            d["count"] =
                static_cast<int64_t>(inst.distribution.count());
            if (inst.distribution.count() > 0) {
                d["min"] = inst.distribution.min();
                d["max"] = inst.distribution.max();
                d["mean"] = inst.distribution.mean();
            }
            /* Percentiles are always present (0 on an empty
             * distribution) so dashboards can chart them without a
             * per-instrument existence check. */
            d["p50"] = inst.distribution.percentile(0.50);
            d["p99"] = inst.distribution.percentile(0.99);
            d["p999"] = inst.distribution.percentile(0.999);
            distributions[k] = JsonValue(std::move(d));
            break;
          }
          case Kind::Series: {
            JsonObject s;
            s["bucketNs"] =
                static_cast<int64_t>(inst.series.bucketSize());
            JsonObject buckets;
            for (const auto &[bucket, count] :
                 inst.series.bucketCounts())
                buckets[std::to_string(bucket)] =
                    static_cast<int64_t>(count);
            s["buckets"] = JsonValue(std::move(buckets));
            seriesOut[k] = JsonValue(std::move(s));
            break;
          }
        }
    }
    JsonObject sourceOut;
    for (const auto &[name, fn] : sources)
        sourceOut[name] = fn();
    JsonObject doc;
    doc["counters"] = JsonValue(std::move(counters));
    doc["distributions"] = JsonValue(std::move(distributions));
    doc["series"] = JsonValue(std::move(seriesOut));
    doc["sources"] = JsonValue(std::move(sourceOut));
    doc["collisions"] = static_cast<int64_t>(kindCollisions);
    return JsonValue(std::move(doc));
}

void
MetricsRegistry::clear()
{
    instruments.clear();
    orphans.clear();
    sources.clear();
    kindCollisions = 0;
}

} // namespace cronus::obs
