/**
 * @file
 * Unified metrics registry.
 *
 * Components historically grew ad-hoc Counter / Distribution /
 * ThroughputSeries members plus StatGroup counter maps, each with its
 * own dump path. The registry unifies them under named, labeled
 * handles -- `counter("srpc.bytes", {{"device", "gpu0"}})` -- and one
 * snapshot() call that renders everything (plus any registered
 * pull-sources such as a component's StatGroup) as a single JSON
 * document.
 *
 * Handles are stable references: registering the same name + labels
 * twice returns the same instrument, so call sites can cache the
 * reference or re-resolve it each time, whichever reads better.
 * Registering an existing key as a *different kind* is a collision:
 * the caller gets a private unregistered instrument (so it never
 * aliases someone else's data) and the registry counts the collision
 * for tests and health checks.
 */

#ifndef CRONUS_OBS_METRICS_HH
#define CRONUS_OBS_METRICS_HH

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/json.hh"
#include "base/stats.hh"

namespace cronus::obs
{

/** Label set attached to an instrument, e.g. {{"device","gpu0"}}. */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Process-wide registry (systems may also own private ones). */
    static MetricsRegistry &global();

    Counter &counter(const std::string &name,
                     const MetricLabels &labels = {});
    Distribution &distribution(const std::string &name,
                               const MetricLabels &labels = {});
    ThroughputSeries &series(const std::string &name,
                             const MetricLabels &labels = {},
                             SimTime bucket_ns = 100 * kNsPerMs);

    /**
     * Register a pull-source: a component whose stats live elsewhere
     * (a StatGroup, a TlbCounters struct) contributes a closure that
     * renders them at snapshot time. Re-registering a name replaces
     * the previous source; removeSource drops it (components with a
     * shorter lifetime than the registry must deregister).
     */
    using Source = std::function<JsonValue()>;
    void addSource(const std::string &name, Source source);
    void removeSource(const std::string &name);

    /** Everything -- instruments and sources -- as one JSON doc. */
    JsonValue snapshot() const;

    /** Kind-mismatch registrations observed (see file comment). */
    uint64_t collisions() const { return kindCollisions; }

    size_t instrumentCount() const { return instruments.size(); }

    /** Drop all instruments and sources (tests). */
    void clear();

  private:
    enum class Kind
    {
        Counter,
        Distribution,
        Series,
    };

    struct Instrument
    {
        Kind kind;
        Counter counter;
        Distribution distribution;
        ThroughputSeries series;

        explicit Instrument(Kind k, SimTime bucket_ns = 100 * kNsPerMs)
            : kind(k), series(bucket_ns)
        {
        }
    };

    /** "name{k1=v1,k2=v2}" with labels sorted by key; duplicate
     *  label names are deduped (last occurrence wins) so permuted
     *  duplicates cannot alias distinct instruments. */
    static std::string key(const std::string &name,
                           const MetricLabels &labels);

    Instrument &resolve(const std::string &name,
                        const MetricLabels &labels, Kind kind,
                        SimTime bucket_ns);

    std::map<std::string, Instrument> instruments;
    /* Kind-collision escapes live here so their references stay
     * valid for the registry's lifetime (deque never moves nodes). */
    std::deque<Instrument> orphans;
    std::map<std::string, Source> sources;
    uint64_t kindCollisions = 0;
};

} // namespace cronus::obs

#endif // CRONUS_OBS_METRICS_HH
