/**
 * @file
 * Bounded flight recorder: a fixed-size ring of the most recent
 * trace events. The Tracer pushes every event here in Ring and Full
 * mode; on an InvariantAuditor violation, a fuzz-oracle failure or a
 * Supervisor quarantine the ring is snapshotted so the repro ships
 * with its last-N-events timeline.
 */

#ifndef CRONUS_OBS_FLIGHT_RECORDER_HH
#define CRONUS_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <vector>

#include "base/json.hh"
#include "base/sim_clock.hh"

namespace cronus::obs
{

/** One trace event. @c name / @c cat must be string literals (the
 *  tracer never copies them). */
struct TraceEvent
{
    char phase = 'X';       ///< 'X' complete, 'i' instant
    uint32_t platform = 0;  ///< platform ordinal (trace pid)
    uint32_t track = 0;     ///< named track id (trace tid)
    SimTime ts = 0;         ///< virtual start time (ns)
    SimTime dur = 0;        ///< virtual duration (ns; 'X' only)
    const char *name = "";
    const char *cat = "";
    JsonObject args;
};

class FlightRecorder
{
  public:
    static constexpr size_t kDefaultCapacity = 256;

    explicit FlightRecorder(size_t capacity = kDefaultCapacity)
        : cap(capacity ? capacity : 1)
    {
    }

    size_t capacity() const { return cap; }
    /** Resize and drop current contents (total counter kept). */
    void
    setCapacity(size_t capacity)
    {
        cap = capacity ? capacity : 1;
        slots.clear();
        head = 0;
    }

    void
    push(TraceEvent ev)
    {
        if (slots.size() < cap) {
            slots.push_back(std::move(ev));
        } else {
            slots[head] = std::move(ev);
            head = (head + 1) % cap;
        }
        ++total;
    }

    /** Events currently held, oldest first. */
    std::vector<TraceEvent>
    snapshot() const
    {
        std::vector<TraceEvent> out;
        out.reserve(slots.size());
        for (size_t i = 0; i < slots.size(); ++i)
            out.push_back(slots[(head + i) % slots.size()]);
        return out;
    }

    size_t size() const { return slots.size(); }
    /** Events ever pushed (so a dump can say how many were lost). */
    uint64_t totalRecorded() const { return total; }

    void
    clear()
    {
        slots.clear();
        head = 0;
        total = 0;
    }

  private:
    size_t cap;
    size_t head = 0;  ///< oldest slot once the ring is full
    uint64_t total = 0;
    std::vector<TraceEvent> slots;
};

} // namespace cronus::obs

#endif // CRONUS_OBS_FLIGHT_RECORDER_HH
