/**
 * @file
 * Span-based virtual-time tracer.
 *
 * Every event is stamped from the platform's SimClock -- never from
 * wall clock -- so traces are deterministic: two identical runs
 * produce byte-identical trace JSON. The tracer itself never charges
 * virtual time (it only *reads* the clock), which is what keeps
 * figure-bench output byte-identical whether tracing is on or off --
 * the same discipline the software TLB established with
 * CRONUS_DISABLE_TLB.
 *
 * Three modes:
 *
 *   Off   (default)  spans and instants are no-ops;
 *   Ring             events feed only the bounded FlightRecorder --
 *                    cheap enough to leave on whenever an
 *                    InvariantAuditor is attached, so every audit
 *                    violation, fuzz-oracle failure or Supervisor
 *                    quarantine can dump the last-N-events timeline;
 *   Full             events are additionally accumulated for export
 *                    as a Chrome/Perfetto trace-event JSON document
 *                    (chrome://tracing or ui.perfetto.dev).
 *
 * CRONUS_TRACE=1 in the environment selects Full at first use;
 * components may programmatically raise the mode (never lower it)
 * with ensureMode().
 *
 * Track model: trace `pid` is the platform ordinal (Platform
 * registers its SimClock on construction), trace `tid` is a named
 * track -- one per partition ("p2 gpu0"), per enclave ("e65537 cpu0")
 * or per component ("dispatcher") -- resolved through the track
 * helpers below and emitted as thread_name metadata.
 */

#ifndef CRONUS_OBS_TRACE_HH
#define CRONUS_OBS_TRACE_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/sim_clock.hh"
#include "flight_recorder.hh"

namespace cronus::obs
{

enum class TraceMode
{
    Off,   ///< tracing disabled; spans/instants are no-ops
    Ring,  ///< events feed only the flight-recorder ring
    Full,  ///< ring + full event list for JSON export
};

class Tracer
{
  public:
    /** Process-wide tracer. First use resolves CRONUS_TRACE. */
    static Tracer &instance();

    TraceMode mode() const { return traceMode; }
    bool active() const { return traceMode != TraceMode::Off; }
    bool exporting() const { return traceMode == TraceMode::Full; }
    void setMode(TraceMode mode) { traceMode = mode; }
    /** Raise the mode to at least @p mode; never lowers it. */
    void ensureMode(TraceMode mode);
    /** CRONUS_TRACE set to a non-empty value other than "0". */
    static bool envEnabled();

    /* --- clock registration (Platform ctor/dtor) --- */

    /**
     * A platform came up: its SimClock becomes the stamping clock
     * and events are attributed to a fresh platform ordinal until
     * the next attach (or this clock's detach).
     */
    void attachClock(const SimClock *clk);
    void detachClock(const SimClock *clk);
    /** Virtual now of the innermost attached clock (0 if none). */
    SimTime now() const;
    uint32_t currentPlatform() const { return platformOrdinal; }

    /* --- tracks --- */

    /** Id of the named track (memoized; ids are first-use order,
     *  so identical runs assign identical ids). */
    uint32_t track(const std::string &name);
    /** "p<pid> <device>" partition track. */
    uint32_t partitionTrack(uint64_t pid, const std::string &device);
    /** "e<eid> <device>" enclave track. */
    uint32_t enclaveTrack(uint64_t eid, const std::string &device);

    /* --- events --- */

    /** Instant event at virtual now. */
    void instant(uint32_t track, const char *name, const char *cat,
                 JsonObject args = JsonObject{});
    /** Complete event from @p start to virtual now. */
    void complete(uint32_t track, const char *name, const char *cat,
                  SimTime start, JsonObject args = JsonObject{});

    /* --- flight recorder --- */

    FlightRecorder &flight() { return ring; }
    /** Ring contents as a standalone JSON document. */
    JsonValue flightJson() const;
    /**
     * Emit a flight-recorder dump: snapshot the ring, retain it in
     * recentDumps() (bounded) and hand it to the dump sink. Called
     * by the InvariantAuditor on a violation, by the fuzz harness on
     * an oracle failure, and by the Supervisor on quarantine.
     */
    void dumpFlight(const std::string &reason);
    /** Same, but dump a previously captured flight document (the
     *  fuzz harness snapshots the ring before its baseline run). */
    void dumpFlight(const std::string &reason, const JsonValue &doc);

    struct FlightDump
    {
        std::string reason;
        JsonValue doc;
    };
    const std::vector<FlightDump> &recentDumps() const
    {
        return dumps;
    }
    /** Replace the default sink (a Logger warn line). Pass an empty
     *  function to restore the default. */
    using DumpSink =
        std::function<void(const std::string & /*reason*/,
                           const JsonValue & /*doc*/)>;
    void setDumpSink(DumpSink sink) { dumpSink = std::move(sink); }

    /* --- export --- */

    /** Chrome trace-event document ("traceEvents" + metadata). */
    JsonValue traceJson() const;
    Status writeTraceFile(const std::string &path) const;
    uint64_t eventCount() const { return events.size(); }
    uint64_t droppedEvents() const { return dropped; }

    /** Drop events, tracks, ring and retained dumps (keeps mode and
     *  attached clocks). Tests and sequential benches use this to
     *  start a fresh byte-identical trace. */
    void clear();

  private:
    Tracer();
    void record(TraceEvent ev);

    /* Full-mode growth is bounded so a runaway trace degrades into
     * a truncated (and counted) document instead of an OOM. */
    static constexpr size_t kMaxExportEvents = 1u << 22;
    static constexpr size_t kMaxRetainedDumps = 8;

    TraceMode traceMode = TraceMode::Off;
    std::vector<const SimClock *> clockStack;
    uint32_t platformOrdinal = 0;
    uint32_t nextPlatformOrdinal = 0;

    std::map<std::string, uint32_t> trackIds;
    std::vector<std::string> trackNames;  ///< index = id - 1

    std::vector<TraceEvent> events;
    uint64_t dropped = 0;
    FlightRecorder ring;
    std::vector<FlightDump> dumps;
    DumpSink dumpSink;
};

/**
 * RAII span: opens at construction, emits one complete event at
 * close()/destruction. Inert (no clock read, no allocation) when the
 * tracer is Off at construction time. Close order gives the natural
 * nesting: an inner span closes (and is emitted) before its outer
 * span, and Perfetto reconstructs the stack from ts/dur containment.
 */
class Span
{
  public:
    Span() = default;
    Span(uint32_t track, const char *name, const char *cat)
    {
        Tracer &tracer = Tracer::instance();
        if (!tracer.active())
            return;
        live_ = true;
        track_ = track;
        name_ = name;
        cat_ = cat;
        start_ = tracer.now();
    }
    Span(Span &&other) noexcept { *this = std::move(other); }
    Span &
    operator=(Span &&other) noexcept
    {
        if (this != &other) {
            close();
            live_ = other.live_;
            track_ = other.track_;
            start_ = other.start_;
            name_ = other.name_;
            cat_ = other.cat_;
            args_ = std::move(other.args_);
            other.live_ = false;
        }
        return *this;
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    ~Span() { close(); }

    bool live() const { return live_; }

    /** Attach an argument (no-op on a dead span). */
    void
    arg(const char *key, int64_t value)
    {
        if (live_)
            args_[key] = value;
    }
    void
    arg(const char *key, const std::string &value)
    {
        if (live_)
            args_[key] = value;
    }

    void
    close()
    {
        if (!live_)
            return;
        live_ = false;
        Tracer::instance().complete(track_, name_, cat_, start_,
                                    std::move(args_));
    }

  private:
    bool live_ = false;
    uint32_t track_ = 0;
    SimTime start_ = 0;
    const char *name_ = "";
    const char *cat_ = "";
    JsonObject args_;
};

} // namespace cronus::obs

#endif // CRONUS_OBS_TRACE_HH
