/**
 * @file
 * Span-based virtual-time tracer.
 *
 * Every event is stamped from the platform's SimClock -- never from
 * wall clock -- so traces are deterministic: two identical runs
 * produce byte-identical trace JSON. The tracer itself never charges
 * virtual time (it only *reads* the clock), which is what keeps
 * figure-bench output byte-identical whether tracing is on or off --
 * the same discipline the software TLB established with
 * CRONUS_DISABLE_TLB.
 *
 * Three modes:
 *
 *   Off   (default)  spans and instants are no-ops;
 *   Ring             events feed only the bounded FlightRecorder --
 *                    cheap enough to leave on whenever an
 *                    InvariantAuditor is attached, so every audit
 *                    violation, fuzz-oracle failure or Supervisor
 *                    quarantine can dump the last-N-events timeline;
 *   Full             events are additionally accumulated for export
 *                    as a Chrome/Perfetto trace-event JSON document
 *                    (chrome://tracing or ui.perfetto.dev).
 *
 * CRONUS_TRACE=1 in the environment selects Full at first use;
 * components may programmatically raise the mode (never lower it)
 * with ensureMode().
 *
 * Track model: trace `pid` is the platform ordinal (Platform
 * registers its SimClock on construction), trace `tid` is a named
 * track -- one per partition ("p2 gpu0"), per enclave ("e65537 cpu0")
 * or per component ("dispatcher") -- resolved through the track
 * helpers below and emitted as thread_name metadata.
 *
 * Parallelism (DESIGN.md section 13): clock attachment is
 * *per-thread* (each fuzz --jobs seed stamps from its own clocks),
 * and the shared streams (track table, export list, flight ring)
 * are mutex-guarded. Parallel-engine workers never touch the shared
 * streams directly: the engine installs a per-event Capture, events
 * buffer into it with provisional timestamps/track ids, and the
 * commit step splices each capture at its event's true start time,
 * in issue order -- so the merged stream (and the exported JSON) is
 * byte-identical to a serial run's.
 */

#ifndef CRONUS_OBS_TRACE_HH
#define CRONUS_OBS_TRACE_HH

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/sim_clock.hh"
#include "flight_recorder.hh"

namespace cronus::obs
{

enum class TraceMode
{
    Off,   ///< tracing disabled; spans/instants are no-ops
    Ring,  ///< events feed only the flight-recorder ring
    Full,  ///< ring + full event list for JSON export
};

class Tracer
{
  public:
    /** Process-wide tracer. First use resolves CRONUS_TRACE. */
    static Tracer &instance();

    TraceMode mode() const { return traceMode.load(); }
    bool active() const { return mode() != TraceMode::Off; }
    bool exporting() const { return mode() == TraceMode::Full; }
    void setMode(TraceMode mode) { traceMode.store(mode); }
    /** Raise the mode to at least @p mode; never lowers it. */
    void ensureMode(TraceMode mode);
    /** CRONUS_TRACE set to a non-empty value other than "0". */
    static bool envEnabled();

    /* --- clock registration (Platform ctor/dtor) --- */

    /**
     * A platform came up: its SimClock becomes the stamping clock
     * and events are attributed to a fresh platform ordinal until
     * the next attach (or this clock's detach). Attachment is
     * per-thread so concurrent fuzz --jobs seeds each stamp from
     * their own platform clocks.
     */
    void attachClock(const SimClock *clk);
    void detachClock(const SimClock *clk);
    /**
     * Virtual now for stamping. Inside a parallel-engine event an
     * active SimClock frame wins (the worker thread has no attached
     * clocks of its own); otherwise the innermost clock attached on
     * this thread (0 if none).
     */
    SimTime now() const;
    uint32_t currentPlatform() const;

    /* --- deferred capture (parallel engine) --- */

    /**
     * Event sink for one parallel-engine event. While installed on a
     * thread, record() buffers events here instead of touching the
     * shared ring/export streams; tracks first seen inside a capture
     * get *provisional* ids (kProvisionalTrack bit set) resolved to
     * real first-use-order ids at splice time.
     */
    struct Capture
    {
        std::vector<TraceEvent> events;
        /** Names behind provisional ids; index = id with the marker
         *  bit cleared. */
        std::vector<std::string> provisionalTracks;
        std::map<std::string, uint32_t> provisionalIds;
        uint64_t drops = 0;
        Capture *prev = nullptr;
    };
    static constexpr uint32_t kProvisionalTrack = 0x80000000u;

    /** Install a capture on this thread (nullptr when tracing is
     *  off -- then nothing is installed). */
    Capture *beginCapture();
    /** Uninstall @p cap (no-op on nullptr). The capture stays alive
     *  until spliceCapture()/dropCapture(). */
    void endCapture(Capture *cap);
    /**
     * Merge a capture into the shared streams: each event's frame-
     * relative timestamp (recorded against @p frame_base) is rebased
     * to the event's committed start @p true_start, its platform is
     * stamped from the *calling* thread's ordinal, and provisional
     * tracks are resolved in commit order -- which the engine
     * guarantees is issue order, reproducing serial first-use track
     * ids. Frees @p cap.
     */
    void spliceCapture(Capture *cap, SimTime true_start,
                       SimTime frame_base);
    /** Discard a capture unmerged (aborted batch suffix). */
    void dropCapture(Capture *cap);

    /* --- tracks --- */

    /** Id of the named track (memoized; ids are first-use order,
     *  so identical runs assign identical ids). */
    uint32_t track(const std::string &name);
    /** "p<pid> <device>" partition track. */
    uint32_t partitionTrack(uint64_t pid, const std::string &device);
    /** "e<eid> <device>" enclave track. */
    uint32_t enclaveTrack(uint64_t eid, const std::string &device);

    /* --- events --- */

    /** Instant event at virtual now. */
    void instant(uint32_t track, const char *name, const char *cat,
                 JsonObject args = JsonObject{});
    /** Complete event from @p start to virtual now. */
    void complete(uint32_t track, const char *name, const char *cat,
                  SimTime start, JsonObject args = JsonObject{});

    /* --- flight recorder --- */

    /** Direct ring access (single-threaded callers: tests, setup).
     *  Concurrent code must go through clearFlight()/flightJson(),
     *  which take the tracer lock. */
    FlightRecorder &flight() { return ring; }
    /** Empty the ring under the tracer lock (fuzz --jobs seeds
     *  scope the ring to their own run concurrently). */
    void clearFlight();
    /** Ring contents as a standalone JSON document. */
    JsonValue flightJson() const;
    /**
     * Emit a flight-recorder dump: snapshot the ring, retain it in
     * recentDumps() (bounded) and hand it to the dump sink. Called
     * by the InvariantAuditor on a violation, by the fuzz harness on
     * an oracle failure, and by the Supervisor on quarantine.
     */
    void dumpFlight(const std::string &reason);
    /** Same, but dump a previously captured flight document (the
     *  fuzz harness snapshots the ring before its baseline run). */
    void dumpFlight(const std::string &reason, const JsonValue &doc);

    struct FlightDump
    {
        std::string reason;
        JsonValue doc;
    };
    const std::vector<FlightDump> &recentDumps() const
    {
        return dumps;
    }
    /** Replace the default sink (a Logger warn line). Pass an empty
     *  function to restore the default. */
    using DumpSink =
        std::function<void(const std::string & /*reason*/,
                           const JsonValue & /*doc*/)>;
    void setDumpSink(DumpSink sink) { dumpSink = std::move(sink); }

    /* --- export --- */

    /** Chrome trace-event document ("traceEvents" + metadata). */
    JsonValue traceJson() const;
    Status writeTraceFile(const std::string &path) const;
    uint64_t eventCount() const;
    uint64_t droppedEvents() const;

    /** Drop events, tracks, ring and retained dumps (keeps mode and
     *  attached clocks). Tests and sequential benches use this to
     *  start a fresh byte-identical trace. */
    void clear();

  private:
    Tracer();
    void record(TraceEvent ev);
    /** Push to ring/export streams; caller holds mu. */
    void recordLocked(TraceEvent ev);
    /** Find-or-create a real track id; caller holds mu. */
    uint32_t trackLocked(const std::string &name);

    /* Full-mode growth is bounded so a runaway trace degrades into
     * a truncated (and counted) document instead of an OOM. */
    static constexpr size_t kMaxExportEvents = 1u << 22;
    static constexpr size_t kMaxRetainedDumps = 8;

    std::atomic<TraceMode> traceMode{TraceMode::Off};
    std::atomic<uint32_t> nextPlatformOrdinal{0};

    /* mu guards everything below: track table, export list, flight
     * ring and retained dumps. Worker threads only reach these via
     * spliceCapture (serialized by the engine's commit loop anyway);
     * fuzz --jobs seeds contend for real. */
    mutable std::mutex mu;
    std::map<std::string, uint32_t> trackIds;
    std::vector<std::string> trackNames;  ///< index = id - 1

    std::vector<TraceEvent> events;
    uint64_t dropped = 0;
    FlightRecorder ring;
    std::vector<FlightDump> dumps;
    DumpSink dumpSink;
};

/**
 * RAII span: opens at construction, emits one complete event at
 * close()/destruction. Inert (no clock read, no allocation) when the
 * tracer is Off at construction time. Close order gives the natural
 * nesting: an inner span closes (and is emitted) before its outer
 * span, and Perfetto reconstructs the stack from ts/dur containment.
 */
class Span
{
  public:
    Span() = default;
    Span(uint32_t track, const char *name, const char *cat)
    {
        Tracer &tracer = Tracer::instance();
        if (!tracer.active())
            return;
        live_ = true;
        track_ = track;
        name_ = name;
        cat_ = cat;
        start_ = tracer.now();
    }
    Span(Span &&other) noexcept { *this = std::move(other); }
    Span &
    operator=(Span &&other) noexcept
    {
        if (this != &other) {
            close();
            live_ = other.live_;
            track_ = other.track_;
            start_ = other.start_;
            name_ = other.name_;
            cat_ = other.cat_;
            args_ = std::move(other.args_);
            other.live_ = false;
        }
        return *this;
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    ~Span() { close(); }

    bool live() const { return live_; }

    /** Attach an argument (no-op on a dead span). */
    void
    arg(const char *key, int64_t value)
    {
        if (live_)
            args_[key] = value;
    }
    void
    arg(const char *key, const std::string &value)
    {
        if (live_)
            args_[key] = value;
    }

    void
    close()
    {
        if (!live_)
            return;
        live_ = false;
        Tracer::instance().complete(track_, name_, cat_, start_,
                                    std::move(args_));
    }

  private:
    bool live_ = false;
    uint32_t track_ = 0;
    SimTime start_ = 0;
    const char *name_ = "";
    const char *cat_ = "";
    JsonObject args_;
};

} // namespace cronus::obs

#endif // CRONUS_OBS_TRACE_HH
