#include "trace.hh"

#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"

namespace cronus::obs
{

namespace
{

/**
 * Trace-event timestamps are microseconds. Virtual nanoseconds divide
 * exactly by 1000.0 in double for every SimTime a run can reach, and
 * the JSON writer prints doubles with %.17g, so the conversion is
 * deterministic end to end.
 */
JsonValue
micros(SimTime ns)
{
    return JsonValue(static_cast<double>(ns) / 1000.0);
}

JsonValue
eventJson(const TraceEvent &ev)
{
    JsonObject o;
    o["name"] = ev.name;
    o["cat"] = ev.cat;
    o["ph"] = std::string(1, ev.phase);
    o["pid"] = static_cast<int64_t>(ev.platform);
    o["tid"] = static_cast<int64_t>(ev.track);
    o["ts"] = micros(ev.ts);
    if (ev.phase == 'X')
        o["dur"] = micros(ev.dur);
    else if (ev.phase == 'i')
        o["s"] = "t";  /* thread-scoped instant */
    if (!ev.args.empty())
        o["args"] = JsonValue(ev.args);
    return JsonValue(std::move(o));
}

} // namespace

Tracer::Tracer()
{
    if (envEnabled())
        traceMode = TraceMode::Full;
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

bool
Tracer::envEnabled()
{
    const char *v = std::getenv("CRONUS_TRACE");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

void
Tracer::ensureMode(TraceMode mode)
{
    if (static_cast<int>(mode) > static_cast<int>(traceMode))
        traceMode = mode;
}

void
Tracer::attachClock(const SimClock *clk)
{
    clockStack.push_back(clk);
    platformOrdinal = nextPlatformOrdinal++;
}

void
Tracer::detachClock(const SimClock *clk)
{
    /* Platforms usually die LIFO, but be robust to any order. */
    for (size_t i = clockStack.size(); i-- > 0;) {
        if (clockStack[i] == clk) {
            clockStack.erase(clockStack.begin() +
                             static_cast<ptrdiff_t>(i));
            break;
        }
    }
}

SimTime
Tracer::now() const
{
    return clockStack.empty() ? 0 : clockStack.back()->now();
}

uint32_t
Tracer::track(const std::string &name)
{
    auto it = trackIds.find(name);
    if (it != trackIds.end())
        return it->second;
    uint32_t id = static_cast<uint32_t>(trackNames.size()) + 1;
    trackIds.emplace(name, id);
    trackNames.push_back(name);
    return id;
}

uint32_t
Tracer::partitionTrack(uint64_t pid, const std::string &device)
{
    return track("p" + std::to_string(pid) + " " + device);
}

uint32_t
Tracer::enclaveTrack(uint64_t eid, const std::string &device)
{
    return track("e" + std::to_string(eid) + " " + device);
}

void
Tracer::record(TraceEvent ev)
{
    ring.push(ev);
    if (traceMode != TraceMode::Full)
        return;
    if (events.size() >= kMaxExportEvents) {
        ++dropped;
        return;
    }
    events.push_back(std::move(ev));
}

void
Tracer::instant(uint32_t track, const char *name, const char *cat,
                JsonObject args)
{
    if (!active())
        return;
    TraceEvent ev;
    ev.phase = 'i';
    ev.platform = platformOrdinal;
    ev.track = track;
    ev.ts = now();
    ev.name = name;
    ev.cat = cat;
    ev.args = std::move(args);
    record(std::move(ev));
}

void
Tracer::complete(uint32_t track, const char *name, const char *cat,
                 SimTime start, JsonObject args)
{
    if (!active())
        return;
    TraceEvent ev;
    ev.phase = 'X';
    ev.platform = platformOrdinal;
    ev.track = track;
    ev.ts = start;
    SimTime end = now();
    ev.dur = end >= start ? end - start : 0;
    ev.name = name;
    ev.cat = cat;
    ev.args = std::move(args);
    record(std::move(ev));
}

JsonValue
Tracer::flightJson() const
{
    JsonArray evs;
    for (const TraceEvent &ev : ring.snapshot())
        evs.push_back(eventJson(ev));
    JsonObject doc;
    doc["capacity"] = static_cast<int64_t>(ring.capacity());
    doc["totalRecorded"] = static_cast<int64_t>(ring.totalRecorded());
    doc["events"] = JsonValue(std::move(evs));
    JsonObject tracks;
    for (const auto &[name, id] : trackIds)
        tracks[std::to_string(id)] = name;
    doc["tracks"] = JsonValue(std::move(tracks));
    return JsonValue(std::move(doc));
}

void
Tracer::dumpFlight(const std::string &reason)
{
    dumpFlight(reason, flightJson());
}

void
Tracer::dumpFlight(const std::string &reason, const JsonValue &doc)
{
    if (dumps.size() >= kMaxRetainedDumps)
        dumps.erase(dumps.begin());
    dumps.push_back(FlightDump{reason, doc});
    if (dumpSink) {
        dumpSink(reason, doc);
        return;
    }
    uint64_t held = 0;
    if (doc.isObject() && doc["events"].isArray())
        held = doc["events"].asArray().size();
    warn(detail::formatString(
        "flight recorder dump (%s): last %llu events captured",
        reason.c_str(), static_cast<unsigned long long>(held)));
}

JsonValue
Tracer::traceJson() const
{
    JsonArray evs;
    /* Metadata first: one process_name per platform ordinal seen,
     * one thread_name per (platform, track) pair seen. */
    std::map<uint32_t, bool> platforms;
    std::map<std::pair<uint32_t, uint32_t>, bool> pairs;
    for (const TraceEvent &ev : events) {
        platforms[ev.platform] = true;
        pairs[{ev.platform, ev.track}] = true;
    }
    for (const auto &[plat, _] : platforms) {
        JsonObject meta;
        meta["name"] = "process_name";
        meta["ph"] = "M";
        meta["pid"] = static_cast<int64_t>(plat);
        meta["tid"] = 0;
        JsonObject args;
        args["name"] = "platform" + std::to_string(plat);
        meta["args"] = JsonValue(std::move(args));
        evs.push_back(JsonValue(std::move(meta)));
    }
    for (const auto &[key, _] : pairs) {
        const auto &[plat, track] = key;
        if (track == 0 || track > trackNames.size())
            continue;
        JsonObject meta;
        meta["name"] = "thread_name";
        meta["ph"] = "M";
        meta["pid"] = static_cast<int64_t>(plat);
        meta["tid"] = static_cast<int64_t>(track);
        JsonObject args;
        args["name"] = trackNames[track - 1];
        meta["args"] = JsonValue(std::move(args));
        evs.push_back(JsonValue(std::move(meta)));
    }
    for (const TraceEvent &ev : events)
        evs.push_back(eventJson(ev));
    JsonObject doc;
    doc["displayTimeUnit"] = "ns";
    doc["traceEvents"] = JsonValue(std::move(evs));
    if (dropped) {
        /* Never truncate silently. */
        doc["droppedEvents"] = static_cast<int64_t>(dropped);
    }
    return JsonValue(std::move(doc));
}

Status
Tracer::writeTraceFile(const std::string &path) const
{
    std::string text = traceJson().dump();
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return makeError(ErrorCode::InvalidArgument,
                         "cannot open trace file " + path);
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (n != text.size())
        return makeError(ErrorCode::ResourceExhausted,
                         "short write to trace file " + path);
    return Status::ok();
}

void
Tracer::clear()
{
    events.clear();
    dropped = 0;
    ring.clear();
    dumps.clear();
    trackIds.clear();
    trackNames.clear();
}

} // namespace cronus::obs
