#include "trace.hh"

#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"

namespace cronus::obs
{

namespace
{

/**
 * Trace-event timestamps are microseconds. Virtual nanoseconds divide
 * exactly by 1000.0 in double for every SimTime a run can reach, and
 * the JSON writer prints doubles with %.17g, so the conversion is
 * deterministic end to end.
 */
JsonValue
micros(SimTime ns)
{
    return JsonValue(static_cast<double>(ns) / 1000.0);
}

JsonValue
eventJson(const TraceEvent &ev)
{
    JsonObject o;
    o["name"] = ev.name;
    o["cat"] = ev.cat;
    o["ph"] = std::string(1, ev.phase);
    o["pid"] = static_cast<int64_t>(ev.platform);
    o["tid"] = static_cast<int64_t>(ev.track);
    o["ts"] = micros(ev.ts);
    if (ev.phase == 'X')
        o["dur"] = micros(ev.dur);
    else if (ev.phase == 'i')
        o["s"] = "t";  /* thread-scoped instant */
    if (!ev.args.empty())
        o["args"] = JsonValue(ev.args);
    return JsonValue(std::move(o));
}

/**
 * Per-thread stamping state. The main thread attaches platform
 * clocks exactly like the serial tracer always did; a fuzz --jobs
 * worker gets its own stack so concurrent seeds stamp independently;
 * a parallel-engine worker attaches nothing (its clock comes from
 * the active SimClock frame).
 */
struct TlsClockState
{
    std::vector<const SimClock *> stack;
    uint32_t ordinal = 0;
};

TlsClockState &
tlsClocks()
{
    static thread_local TlsClockState state;
    return state;
}

thread_local Tracer::Capture *tlsCapture = nullptr;

} // namespace

Tracer::Tracer()
{
    if (envEnabled())
        traceMode = TraceMode::Full;
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

bool
Tracer::envEnabled()
{
    const char *v = std::getenv("CRONUS_TRACE");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

void
Tracer::ensureMode(TraceMode mode)
{
    TraceMode cur = traceMode.load();
    while (static_cast<int>(mode) > static_cast<int>(cur) &&
           !traceMode.compare_exchange_weak(cur, mode)) {
    }
}

void
Tracer::attachClock(const SimClock *clk)
{
    TlsClockState &tls = tlsClocks();
    tls.stack.push_back(clk);
    tls.ordinal = nextPlatformOrdinal.fetch_add(1);
}

void
Tracer::detachClock(const SimClock *clk)
{
    /* Platforms usually die LIFO, but be robust to any order. */
    std::vector<const SimClock *> &stack = tlsClocks().stack;
    for (size_t i = stack.size(); i-- > 0;) {
        if (stack[i] == clk) {
            stack.erase(stack.begin() + static_cast<ptrdiff_t>(i));
            break;
        }
    }
}

SimTime
Tracer::now() const
{
    if (const SimClock::Frame *frame = SimClock::activeFrame())
        return frame->clock->now();
    const std::vector<const SimClock *> &stack = tlsClocks().stack;
    return stack.empty() ? 0 : stack.back()->now();
}

uint32_t
Tracer::currentPlatform() const
{
    return tlsClocks().ordinal;
}

uint32_t
Tracer::track(const std::string &name)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = trackIds.find(name);
        if (it != trackIds.end())
            return it->second;
        if (tlsCapture == nullptr)
            return trackLocked(name);
    }
    /* First use inside a capture: hand out a provisional id; the
     * real id is assigned at splice time, in commit (= issue) order,
     * so the first-use-order table matches a serial run's. */
    Capture *cap = tlsCapture;
    auto it = cap->provisionalIds.find(name);
    if (it != cap->provisionalIds.end())
        return it->second;
    uint32_t id = kProvisionalTrack |
                  static_cast<uint32_t>(cap->provisionalTracks.size());
    cap->provisionalIds.emplace(name, id);
    cap->provisionalTracks.push_back(name);
    return id;
}

uint32_t
Tracer::trackLocked(const std::string &name)
{
    auto it = trackIds.find(name);
    if (it != trackIds.end())
        return it->second;
    uint32_t id = static_cast<uint32_t>(trackNames.size()) + 1;
    trackIds.emplace(name, id);
    trackNames.push_back(name);
    return id;
}

uint32_t
Tracer::partitionTrack(uint64_t pid, const std::string &device)
{
    return track("p" + std::to_string(pid) + " " + device);
}

uint32_t
Tracer::enclaveTrack(uint64_t eid, const std::string &device)
{
    return track("e" + std::to_string(eid) + " " + device);
}

void
Tracer::record(TraceEvent ev)
{
    if (Capture *cap = tlsCapture) {
        if (cap->events.size() >= kMaxExportEvents) {
            ++cap->drops;
            return;
        }
        cap->events.push_back(std::move(ev));
        return;
    }
    std::lock_guard<std::mutex> lock(mu);
    recordLocked(std::move(ev));
}

void
Tracer::recordLocked(TraceEvent ev)
{
    ring.push(ev);
    if (mode() != TraceMode::Full)
        return;
    if (events.size() >= kMaxExportEvents) {
        ++dropped;
        return;
    }
    events.push_back(std::move(ev));
}

Tracer::Capture *
Tracer::beginCapture()
{
    if (!active())
        return nullptr;
    Capture *cap = new Capture;
    cap->prev = tlsCapture;
    tlsCapture = cap;
    return cap;
}

void
Tracer::endCapture(Capture *cap)
{
    if (cap == nullptr)
        return;
    tlsCapture = cap->prev;
}

void
Tracer::spliceCapture(Capture *cap, SimTime true_start,
                      SimTime frame_base)
{
    if (cap == nullptr)
        return;
    std::lock_guard<std::mutex> lock(mu);
    /* The splicing (commit) thread's ordinal is the one a serial run
     * would have stamped: the engine's commit loop runs on the thread
     * that attached the platforms. */
    const uint32_t plat = tlsClocks().ordinal;
    std::vector<uint32_t> resolved(cap->provisionalTracks.size(), 0);
    for (TraceEvent &ev : cap->events) {
        ev.ts = ev.ts - frame_base + true_start;
        if (ev.track & kProvisionalTrack) {
            const uint32_t idx = ev.track & ~kProvisionalTrack;
            if (resolved[idx] == 0)
                resolved[idx] = trackLocked(cap->provisionalTracks[idx]);
            ev.track = resolved[idx];
        }
        ev.platform = plat;
        recordLocked(std::move(ev));
    }
    dropped += cap->drops;
    delete cap;
}

void
Tracer::dropCapture(Capture *cap)
{
    delete cap;
}

void
Tracer::instant(uint32_t track, const char *name, const char *cat,
                JsonObject args)
{
    if (!active())
        return;
    TraceEvent ev;
    ev.phase = 'i';
    ev.platform = tlsClocks().ordinal;
    ev.track = track;
    ev.ts = now();
    ev.name = name;
    ev.cat = cat;
    ev.args = std::move(args);
    record(std::move(ev));
}

void
Tracer::complete(uint32_t track, const char *name, const char *cat,
                 SimTime start, JsonObject args)
{
    if (!active())
        return;
    TraceEvent ev;
    ev.phase = 'X';
    ev.platform = tlsClocks().ordinal;
    ev.track = track;
    ev.ts = start;
    SimTime end = now();
    ev.dur = end >= start ? end - start : 0;
    ev.name = name;
    ev.cat = cat;
    ev.args = std::move(args);
    record(std::move(ev));
}

void
Tracer::clearFlight()
{
    std::lock_guard<std::mutex> lock(mu);
    ring.clear();
}

JsonValue
Tracer::flightJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    JsonArray evs;
    for (const TraceEvent &ev : ring.snapshot())
        evs.push_back(eventJson(ev));
    JsonObject doc;
    doc["capacity"] = static_cast<int64_t>(ring.capacity());
    doc["totalRecorded"] = static_cast<int64_t>(ring.totalRecorded());
    doc["events"] = JsonValue(std::move(evs));
    JsonObject tracks;
    for (const auto &[name, id] : trackIds)
        tracks[std::to_string(id)] = name;
    doc["tracks"] = JsonValue(std::move(tracks));
    return JsonValue(std::move(doc));
}

void
Tracer::dumpFlight(const std::string &reason)
{
    dumpFlight(reason, flightJson());
}

void
Tracer::dumpFlight(const std::string &reason, const JsonValue &doc)
{
    DumpSink sink;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (dumps.size() >= kMaxRetainedDumps)
            dumps.erase(dumps.begin());
        dumps.push_back(FlightDump{reason, doc});
        sink = dumpSink;
    }
    /* Run the sink outside the lock: it may call back into the
     * tracer (e.g. to snapshot the ring). */
    if (sink) {
        sink(reason, doc);
        return;
    }
    uint64_t held = 0;
    if (doc.isObject() && doc["events"].isArray())
        held = doc["events"].asArray().size();
    warn(detail::formatString(
        "flight recorder dump (%s): last %llu events captured",
        reason.c_str(), static_cast<unsigned long long>(held)));
}

JsonValue
Tracer::traceJson() const
{
    std::lock_guard<std::mutex> lock(mu);
    JsonArray evs;
    /* Metadata first: one process_name per platform ordinal seen,
     * one thread_name per (platform, track) pair seen. */
    std::map<uint32_t, bool> platforms;
    std::map<std::pair<uint32_t, uint32_t>, bool> pairs;
    for (const TraceEvent &ev : events) {
        platforms[ev.platform] = true;
        pairs[{ev.platform, ev.track}] = true;
    }
    for (const auto &[plat, _] : platforms) {
        JsonObject meta;
        meta["name"] = "process_name";
        meta["ph"] = "M";
        meta["pid"] = static_cast<int64_t>(plat);
        meta["tid"] = 0;
        JsonObject args;
        args["name"] = "platform" + std::to_string(plat);
        meta["args"] = JsonValue(std::move(args));
        evs.push_back(JsonValue(std::move(meta)));
    }
    for (const auto &[key, _] : pairs) {
        const auto &[plat, track] = key;
        if (track == 0 || track > trackNames.size())
            continue;
        JsonObject meta;
        meta["name"] = "thread_name";
        meta["ph"] = "M";
        meta["pid"] = static_cast<int64_t>(plat);
        meta["tid"] = static_cast<int64_t>(track);
        JsonObject args;
        args["name"] = trackNames[track - 1];
        meta["args"] = JsonValue(std::move(args));
        evs.push_back(JsonValue(std::move(meta)));
    }
    for (const TraceEvent &ev : events)
        evs.push_back(eventJson(ev));
    JsonObject doc;
    doc["displayTimeUnit"] = "ns";
    doc["traceEvents"] = JsonValue(std::move(evs));
    if (dropped) {
        /* Never truncate silently. */
        doc["droppedEvents"] = static_cast<int64_t>(dropped);
    }
    return JsonValue(std::move(doc));
}

Status
Tracer::writeTraceFile(const std::string &path) const
{
    std::string text = traceJson().dump();
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return makeError(ErrorCode::InvalidArgument,
                         "cannot open trace file " + path);
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (n != text.size())
        return makeError(ErrorCode::ResourceExhausted,
                         "short write to trace file " + path);
    return Status::ok();
}

uint64_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return events.size();
}

uint64_t
Tracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mu);
    return dropped;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    events.clear();
    dropped = 0;
    ring.clear();
    dumps.clear();
    trackIds.clear();
    trackNames.clear();
    /* Restart platform numbering so a fresh simulated universe in
     * the same process (tests run several back to back) stamps the
     * same platform ids as a fresh process would. */
    nextPlatformOrdinal.store(0);
}

} // namespace cronus::obs
