#include "vta_bench.hh"

#include <algorithm>

#include "base/rng.hh"

namespace cronus::workloads
{

using accel::NpuBank;
using accel::NpuInsn;
using accel::NpuOp;
using accel::NpuProgram;

Result<VtaBenchResult>
runVtaBench(baseline::ComputeBackend &backend,
            const VtaBenchConfig &config)
{
    uint32_t dim = config.gemmDim;
    uint64_t tile_bytes = uint64_t(dim) * dim;

    Rng rng(0x7a5e);
    std::vector<int8_t> inp(tile_bytes), wgt(tile_bytes);
    for (auto &v : inp)
        v = static_cast<int8_t>(rng.nextBelow(7)) - 3;
    for (auto &v : wgt)
        v = static_cast<int8_t>(rng.nextBelow(7)) - 3;

    auto in_buf = backend.npuAllocBuffer(tile_bytes);
    if (!in_buf.isOk())
        return in_buf.status();
    auto w_buf = backend.npuAllocBuffer(tile_bytes);
    if (!w_buf.isOk())
        return w_buf.status();
    auto out_buf = backend.npuAllocBuffer(tile_bytes);
    if (!out_buf.isOk())
        return out_buf.status();

    Bytes in_bytes(reinterpret_cast<uint8_t *>(inp.data()),
                   reinterpret_cast<uint8_t *>(inp.data()) +
                       tile_bytes);
    Bytes w_bytes(reinterpret_cast<uint8_t *>(wgt.data()),
                  reinterpret_cast<uint8_t *>(wgt.data()) +
                      tile_bytes);
    CRONUS_RETURN_IF_ERROR(
        backend.npuWriteBuffer(in_buf.value(), 0, in_bytes));
    CRONUS_RETURN_IF_ERROR(
        backend.npuWriteBuffer(w_buf.value(), 0, w_bytes));

    /* One batch = load tiles, then opsPerBatch x (GEMM + RELU),
     * then store. */
    NpuProgram program;
    NpuInsn load_in;
    load_in.op = NpuOp::Load;
    load_in.buffer = in_buf.value();
    load_in.bank = NpuBank::Input;
    load_in.length = tile_bytes;
    program.insns.push_back(load_in);
    NpuInsn load_w = load_in;
    load_w.buffer = w_buf.value();
    load_w.bank = NpuBank::Weight;
    program.insns.push_back(load_w);
    for (uint32_t op = 0; op < config.opsPerBatch; ++op) {
        NpuInsn gemm;
        gemm.op = NpuOp::Gemm;
        gemm.rows = dim;
        gemm.cols = dim;
        gemm.inner = dim;
        gemm.resetAccum = true;
        program.insns.push_back(gemm);
        NpuInsn relu;
        relu.op = NpuOp::Alu;
        relu.aluOp = accel::NpuAluOp::Relu;
        relu.aluElems = uint64_t(dim) * dim;
        program.insns.push_back(relu);
    }
    NpuInsn store;
    store.op = NpuOp::Store;
    store.buffer = out_buf.value();
    store.length = tile_bytes;
    program.insns.push_back(store);

    SimTime start = backend.now();
    for (uint32_t batch = 0; batch < config.batches; ++batch)
        CRONUS_RETURN_IF_ERROR(backend.npuRun(program));
    VtaBenchResult result;
    result.totalTimeNs = backend.now() - start;
    uint64_t total_gemms =
        uint64_t(config.opsPerBatch) * config.batches;
    result.gemmOpsPerSecond =
        result.totalTimeNs == 0
            ? 0.0
            : total_gemms * double(kNsPerSec) / result.totalTimeNs;

    /* Verify the output tile against a host int8 reference. */
    auto out = backend.npuReadBuffer(out_buf.value(), 0, tile_bytes);
    if (!out.isOk())
        return out.status();
    bool ok = true;
    for (uint32_t i = 0; i < dim && ok; ++i) {
        for (uint32_t j = 0; j < dim && ok; ++j) {
            int32_t acc = 0;
            for (uint32_t k = 0; k < dim; ++k)
                acc += int32_t(inp[i * dim + k]) *
                       int32_t(wgt[j * dim + k]);
            acc = std::max(acc, 0);          /* relu */
            acc = std::clamp(acc, -128, 127); /* store clamp */
            if (static_cast<int8_t>(out.value()[i * dim + j]) !=
                static_cast<int8_t>(acc))
                ok = false;
        }
    }
    result.verified = ok;
    return result;
}

} // namespace cronus::workloads
