/**
 * @file
 * vta-bench: the NPU microbenchmark suite (§VI-B, Fig. 10a).
 *
 * Generates VTA GEMM/ALU instruction mixes, runs them through a
 * backend's NPU path and reports throughput. The first batch's
 * output tile is verified against a host int8 reference.
 */

#ifndef CRONUS_WORKLOADS_VTA_BENCH_HH
#define CRONUS_WORKLOADS_VTA_BENCH_HH

#include "baseline/compute_backend.hh"

namespace cronus::workloads
{

struct VtaBenchConfig
{
    uint32_t gemmDim = 16;     ///< square GEMM tile dimension
    uint32_t opsPerBatch = 8;  ///< GEMM+RELU pairs per program
    uint32_t batches = 8;
};

struct VtaBenchResult
{
    SimTime totalTimeNs = 0;
    double gemmOpsPerSecond = 0.0;
    bool verified = false;
};

Result<VtaBenchResult> runVtaBench(baseline::ComputeBackend &backend,
                                   const VtaBenchConfig &config);

} // namespace cronus::workloads

#endif // CRONUS_WORKLOADS_VTA_BENCH_HH
