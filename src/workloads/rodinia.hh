/**
 * @file
 * Rodinia-like GPU microbenchmarks (§VI-B, Fig. 7).
 *
 * Nine kernels modeled on the Rodinia suite the paper evaluates
 * (gaussian, hotspot, pathfinder, bfs, nw, srad, backprop, lud,
 * kmeans). Kernel bodies are real computations over simulated GPU
 * memory; every driver verifies the device result against a host
 * reference before reporting time, so the benches cannot silently
 * measure wrong code.
 */

#ifndef CRONUS_WORKLOADS_RODINIA_HH
#define CRONUS_WORKLOADS_RODINIA_HH

#include <string>
#include <vector>

#include "base/sim_clock.hh"
#include "base/status.hh"
#include "baseline/compute_backend.hh"

namespace cronus::workloads
{

/** Register the rodinia kernels with the GPU registry (idempotent). */
void registerRodiniaKernels();

/** Kernel names, for loading modules. */
const std::vector<std::string> &rodiniaKernelNames();

/** Problem scale knob shared by all benchmarks. */
struct RodiniaSize
{
    /** Elements / matrix dimension / node count, per benchmark. */
    uint64_t scale = 256;
    uint32_t iterations = 4;
};

struct RodiniaResult
{
    std::string benchmark;
    /** Virtual computation time (end-to-end on the backend). */
    SimTime computeTimeNs = 0;
    bool verified = false;
};

/** The benchmark names runRodinia accepts. */
const std::vector<std::string> &rodiniaBenchmarks();

/**
 * Run one benchmark on @p backend. The backend must have the
 * rodinia kernels loaded (all provided backends load kernel lists
 * passed at construction; use rodiniaKernelNames()).
 */
Result<RodiniaResult> runRodinia(baseline::ComputeBackend &backend,
                                 const std::string &benchmark,
                                 const RodiniaSize &size);

} // namespace cronus::workloads

#endif // CRONUS_WORKLOADS_RODINIA_HH
