#include "tvm.hh"

#include <algorithm>

#include "base/rng.hh"

namespace cronus::workloads
{

using accel::NpuBank;
using accel::NpuInsn;
using accel::NpuOp;
using accel::NpuProgram;

uint64_t
TvmModel::totalTiles() const
{
    uint64_t total = 0;
    for (uint32_t tiles : tilesPerLayer)
        total += tiles;
    return total;
}

uint64_t
TvmModel::totalMacs() const
{
    return totalTiles() * uint64_t(tileDim) * tileDim * tileDim;
}

namespace
{

TvmModel
makeModel(const std::string &name, uint64_t total_mmacs,
          int layer_count)
{
    TvmModel m;
    m.name = name;
    uint64_t tile_macs =
        uint64_t(m.tileDim) * m.tileDim * m.tileDim;
    /* Scale published MACs down by 1000x so functional simulation
     * stays fast; relative magnitudes are preserved. */
    uint64_t tiles = std::max<uint64_t>(
        total_mmacs * 1000ull / tile_macs, layer_count);
    for (int i = 0; i < layer_count; ++i)
        m.tilesPerLayer.push_back(
            static_cast<uint32_t>(tiles / layer_count + 1));
    return m;
}

} // namespace

/* Published per-inference multiply-accumulate counts:
 * ResNet18 ~0.9 GMACs, ResNet50 ~2 GMACs, YoloV3 ~32 GMACs. */
TvmModel
tvmResnet18()
{
    return makeModel("ResNet18", 900, 18);
}

TvmModel
tvmResnet50()
{
    return makeModel("ResNet50", 2000, 50);
}

TvmModel
tvmYolov3()
{
    return makeModel("YoloV3", 32000, 75);
}

Result<InferenceResult>
runInferenceNpu(baseline::ComputeBackend &backend,
                const TvmModel &model)
{
    uint32_t dim = model.tileDim;
    uint64_t tile_bytes = uint64_t(dim) * dim;

    Rng rng(0x77);
    std::vector<int8_t> act(tile_bytes), wgt(tile_bytes);
    for (auto &v : act)
        v = static_cast<int8_t>(rng.nextBelow(5)) - 2;
    for (auto &v : wgt)
        v = static_cast<int8_t>(rng.nextBelow(5)) - 2;

    auto act_buf = backend.npuAllocBuffer(tile_bytes);
    if (!act_buf.isOk())
        return act_buf.status();
    auto wgt_buf = backend.npuAllocBuffer(tile_bytes);
    if (!wgt_buf.isOk())
        return wgt_buf.status();
    auto out_buf = backend.npuAllocBuffer(tile_bytes);
    if (!out_buf.isOk())
        return out_buf.status();

    Bytes act_bytes(reinterpret_cast<uint8_t *>(act.data()),
                    reinterpret_cast<uint8_t *>(act.data()) +
                        tile_bytes);
    Bytes wgt_bytes(reinterpret_cast<uint8_t *>(wgt.data()),
                    reinterpret_cast<uint8_t *>(wgt.data()) +
                        tile_bytes);
    CRONUS_RETURN_IF_ERROR(
        backend.npuWriteBuffer(act_buf.value(), 0, act_bytes));
    CRONUS_RETURN_IF_ERROR(
        backend.npuWriteBuffer(wgt_buf.value(), 0, wgt_bytes));

    SimTime start = backend.now();
    /* The compiler emits one program per layer: load weights once
     * per layer, then the layer's GEMM tiles + activation. */
    for (uint32_t tiles : model.tilesPerLayer) {
        NpuProgram program;
        NpuInsn load_a;
        load_a.op = NpuOp::Load;
        load_a.buffer = act_buf.value();
        load_a.bank = NpuBank::Input;
        load_a.length = tile_bytes;
        program.insns.push_back(load_a);
        NpuInsn load_w = load_a;
        load_w.buffer = wgt_buf.value();
        load_w.bank = NpuBank::Weight;
        program.insns.push_back(load_w);
        for (uint32_t t = 0; t < tiles; ++t) {
            NpuInsn gemm;
            gemm.op = NpuOp::Gemm;
            gemm.rows = dim;
            gemm.cols = dim;
            gemm.inner = dim;
            gemm.resetAccum = true;
            program.insns.push_back(gemm);
        }
        NpuInsn relu;
        relu.op = NpuOp::Alu;
        relu.aluOp = accel::NpuAluOp::Relu;
        relu.aluElems = tile_bytes;
        program.insns.push_back(relu);
        NpuInsn store;
        store.op = NpuOp::Store;
        store.buffer = out_buf.value();
        store.length = tile_bytes;
        program.insns.push_back(store);
        CRONUS_RETURN_IF_ERROR(backend.npuRun(program));
    }

    InferenceResult result;
    result.model = model.name;
    result.target = "npu";
    result.latencyNs = backend.now() - start;

    /* Verify the final layer's tile against the host reference. */
    auto out = backend.npuReadBuffer(out_buf.value(), 0, tile_bytes);
    if (!out.isOk())
        return out.status();
    bool ok = true;
    for (uint32_t i = 0; i < dim && ok; ++i) {
        for (uint32_t j = 0; j < dim && ok; ++j) {
            int32_t acc = 0;
            for (uint32_t k = 0; k < dim; ++k)
                acc += int32_t(act[i * dim + k]) *
                       int32_t(wgt[j * dim + k]);
            acc = std::max(acc, 0);
            acc = std::clamp(acc, -128, 127);
            if (static_cast<int8_t>(out.value()[i * dim + j]) !=
                static_cast<int8_t>(acc))
                ok = false;
        }
    }
    result.verified = ok;
    return result;
}

Result<InferenceResult>
runInferenceCpu(baseline::ComputeBackend &backend,
                const TvmModel &model)
{
    /* Scalar CPU: ~1 ns per MAC (no tensor unit); charge through
     * the backend's CPU path. */
    SimTime start = backend.now();
    CRONUS_RETURN_IF_ERROR(backend.cpuWork(model.totalMacs()));
    InferenceResult result;
    result.model = model.name;
    result.target = "cpu";
    result.latencyNs = backend.now() - start;
    result.verified = true;
    return result;
}

} // namespace cronus::workloads
