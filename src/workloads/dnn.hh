/**
 * @file
 * DNN training workloads (§VI-C, Fig. 8 / Fig. 11).
 *
 * Models the paper's PyTorch training runs: LeNet-2 on MNIST,
 * ResNet50 and VGG16 on CIFAR-10, DenseNet on ImageNet. Each model
 * is described by its real per-sample FLOP count and parameter
 * sizes; the trainer issues the same call pattern PyTorch's CUDA
 * backend generates per iteration -- batch HtoD copy, one kernel
 * launch per layer forward, two per layer backward, optimizer
 * update launches, and a small loss DtoH read (the synchronization
 * point). Functional math runs on small proxy tensors; the timing
 * model charges the real FLOPs.
 */

#ifndef CRONUS_WORKLOADS_DNN_HH
#define CRONUS_WORKLOADS_DNN_HH

#include <string>
#include <vector>

#include "baseline/compute_backend.hh"

namespace cronus::workloads
{

/** One layer of a model. */
struct LayerSpec
{
    std::string name;
    /** Forward FLOPs per sample. */
    uint64_t flopsPerSample = 0;
    uint64_t paramBytes = 0;
};

struct ModelSpec
{
    std::string name;
    std::vector<LayerSpec> layers;

    uint64_t totalFlopsPerSample() const;
    uint64_t totalParamBytes() const;
};

struct DatasetSpec
{
    std::string name;
    uint64_t sampleBytes = 0;  ///< input tensor bytes per sample
    uint64_t samples = 0;
};

/* Model factories with published per-sample FLOP magnitudes. */
ModelSpec lenet2();
ModelSpec resnet50();
ModelSpec vgg16();
ModelSpec densenet121();

DatasetSpec mnist();
DatasetSpec cifar10();
DatasetSpec imagenet();

/** Register the generic "dnn_op" GPU kernel (idempotent). */
void registerDnnKernels();
const std::vector<std::string> &dnnKernelNames();

struct TrainConfig
{
    uint32_t batchSize = 32;
    uint32_t iterations = 8;
};

struct TrainResult
{
    std::string model;
    std::string dataset;
    /** Virtual time of the measured iterations (excl. warm-up). */
    SimTime totalTimeNs = 0;
    SimTime perIterationNs = 0;
    uint64_t kernelLaunches = 0;
    /** Proxy loss read back each iteration (sanity signal). */
    float finalLoss = 0.0f;
};

/** Run a PyTorch-like training loop against @p backend. */
Result<TrainResult> trainModel(baseline::ComputeBackend &backend,
                               const ModelSpec &model,
                               const DatasetSpec &dataset,
                               const TrainConfig &config);

} // namespace cronus::workloads

#endif // CRONUS_WORKLOADS_DNN_HH
