#include "failover.hh"

#include "accel/builtin_kernels.hh"
#include "core/auto_partition.hh"
#include "core/system.hh"
#include "inject/injector.hh"
#include "inject/invariant_auditor.hh"
#include "recover/resumable_channel.hh"

namespace cronus::workloads
{

using namespace core;

namespace
{

std::string
gpuManifest(const Bytes &image_bytes)
{
    Manifest m;
    m.deviceType = "gpu";
    m.images["mat.cubin"] =
        crypto::digestHex(crypto::sha256(image_bytes));
    for (const auto &fn : CudaRuntime::apiSurface())
        m.mEcalls.push_back(
            {fn, AutoPartitioner::cudaCallIsAsync(fn)});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

std::string
cpuManifest(const Bytes &image_bytes)
{
    Manifest m;
    m.deviceType = "cpu";
    m.images["mat.so"] =
        crypto::digestHex(crypto::sha256(image_bytes));
    m.mEcalls.push_back({"fo_noop", false});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

/** One matrix task riding a resumable channel to a GPU enclave. */
struct MatrixTask
{
    std::unique_ptr<recover::ResumableChannel> channel;
    uint64_t vaA = 0, vaB = 0, vaC = 0;
    uint64_t dim = 0;

    Status
    start(CronusSystem &sys, recover::Supervisor &sup,
          inject::InvariantAuditor &auditor, AppHandle &cpu_enclave,
          const std::string &device_name, uint64_t matrix_dim,
          uint64_t checkpoint_every)
    {
        dim = matrix_dim;
        accel::GpuModuleImage module{"mat.cubin",
                                     {"matmul_f32", "fill_f32"}};
        Bytes image = module.serialize();
        recover::CalleeSpec spec;
        spec.manifestJson = gpuManifest(image);
        spec.imageName = "mat.cubin";
        spec.image = image;
        spec.deviceName = device_name;
        spec.autoCheckpointEvery = checkpoint_every;
        channel = std::make_unique<recover::ResumableChannel>(
            sys, sup, cpu_enclave, std::move(spec));
        /* Re-attach the auditor to every incarnation's channel. */
        channel->setOnConnect([&auditor](SrpcChannel &c) {
            auditor.attachChannel(c);
        });
        CRONUS_RETURN_IF_ERROR(channel->open());

        uint64_t bytes = dim * dim * sizeof(float);
        for (uint64_t *va : {&vaA, &vaB, &vaC}) {
            auto r = channel->call(
                "cuMemAlloc", CudaRuntime::encodeMemAlloc(bytes));
            if (!r.isOk())
                return r.status();
            *va = CudaRuntime::decodeU64Result(r.value()).value();
        }
        uint32_t one_bits = 0x3f800000;  /* 1.0f */
        for (uint64_t va : {vaA, vaB}) {
            auto r = channel->call(
                "cuLaunchKernel",
                CudaRuntime::encodeLaunchKernel(
                    "fill_f32", {va, dim * dim, one_bits},
                    dim * dim));
            if (!r.isOk())
                return r.status();
        }
        /* Seal the initialized operands: a reconnect restores A/B/C
         * from the checkpoint instead of replaying the setup. */
        return channel->checkpoint();
    }

    bool
    live() const
    {
        return channel &&
               channel->state() == recover::ChannelState::Live;
    }

    /** One task step: a matmul + sync (journaled calls). */
    Status
    step()
    {
        auto launch = channel->call(
            "cuLaunchKernel",
            CudaRuntime::encodeLaunchKernel(
                "matmul_f32", {vaA, vaB, vaC, dim, dim, dim},
                dim * dim * dim));
        if (!launch.isOk())
            return launch.status();
        auto sync = channel->call("cuCtxSynchronize", Bytes{});
        return sync.status();
    }
};

} // namespace

Result<FailoverTimeline>
runFailoverTimeline(const FailoverConfig &config)
{
    Logger::instance().setQuiet(true);
    accel::registerBuiltinKernels();
    auto &reg = CpuFunctionRegistry::instance();
    if (!reg.has("fo_noop")) {
        reg.registerFunction("fo_noop", [](CpuCallContext &ctx) {
            ctx.charge(1);
            return Result<Bytes>(Bytes{});
        });
    }

    CronusConfig cfg;
    cfg.numGpus = 2;
    cfg.withNpu = false;
    CronusSystem system(cfg);

    CpuImage cpu_image;
    cpu_image.exports = {"fo_noop"};
    Bytes cpu_bytes = cpu_image.serialize();
    auto cpu = system.createEnclave(cpuManifest(cpu_bytes), "mat.so",
                                    cpu_bytes);
    if (!cpu.isOk())
        return cpu.status();
    AppHandle cpu_handle = cpu.value();

    /* Audits grant accounting, streamCheck and slot lifetimes for
     * the whole run; attached before the first channel exists. */
    inject::InvariantAuditor auditor;
    auditor.attachSpm(system.spm());

    recover::SupervisorConfig sup_cfg;
    sup_cfg.restartBudget = config.restartBudget;
    sup_cfg.backoffBaseNs = config.backoffBaseNs;
    recover::Supervisor supervisor(system, sup_cfg);

    MatrixTask task_a, task_b;
    CRONUS_RETURN_IF_ERROR(task_a.start(
        system, supervisor, auditor, cpu_handle, "gpu0",
        config.matrixDim, config.checkpointEvery));
    CRONUS_RETURN_IF_ERROR(task_b.start(
        system, supervisor, auditor, cpu_handle, "gpu1",
        config.matrixDim, config.checkpointEvery));

    hw::Platform &plat = system.platform();
    SimTime origin = plat.clock().now();
    SimTime end_at = origin + config.runForNs;

    /* The crash is scripted, not hand-delivered: the plan kills
     * gpu0's partition on a checked SPM access at or after the crash
     * time, and the tasks find out via proceed-trap. In crash-loop
     * mode every recovered incarnation is killed again the same way
     * until the Supervisor's restart budget runs out. */
    auto gpu0_mos = system.mosForDevice("gpu0");
    if (!gpu0_mos.isOk())
        return gpu0_mos.status();
    tee::PartitionId gpu0_pid = gpu0_mos.value()->partitionId();
    inject::FaultPlan plan(config.faultSeed);
    if (config.crashLoop) {
        /* Incarnations start at 1; budget restarts reach incarnation
         * budget+1, so budget+1 kills force the quarantine. */
        for (uint64_t k = 1; k <= config.restartBudget + 1; ++k)
            plan.killIncarnation(k, origin + config.crashAtNs,
                                 gpu0_pid);
    } else {
        plan.killAtTime(origin + config.crashAtNs, gpu0_pid);
    }
    inject::FaultInjector injector(system.spm(), plan);
    injector.arm();

    ThroughputSeries series_a(config.bucketNs);
    ThroughputSeries series_b(config.bucketNs);
    FailoverTimeline timeline;

    bool crashed = false;
    SimTime crash_at = 0;
    SimTime recovered_at = 0;
    while (plat.clock().now() < end_at) {
        supervisor.pump();
        if (!timeline.gaveUp) {
            Status s = task_a.step();
            if (s.isOk()) {
                series_a.record(plat.clock().now() - origin);
                if (crashed && recovered_at == 0) {
                    /* The step above resumed the channel: reconnect,
                     * checkpoint restore and journal replay all
                     * happened inside it. */
                    recovered_at = plat.clock().now();
                    timeline.recoveryNs = recovered_at - crash_at;
                }
            } else if (s.code() == ErrorCode::PeerFailed) {
                if (!crashed) {
                    crashed = true;
                    crash_at = plat.clock().now();
                }
                /* Parked: the Supervisor recovers gpu0 while task B
                 * keeps the machine busy below. */
            } else if (s.code() == ErrorCode::Degraded) {
                timeline.gaveUp = true;
            } else {
                return s;
            }
        }
        if (task_b.live()) {
            if (task_b.step().isOk()) {
                series_b.record(plat.clock().now() - origin);
                if (crashed && recovered_at == 0 &&
                    !timeline.gaveUp)
                    ++timeline.taskBStepsDuringOutage;
            }
        }
    }

    timeline.quarantined = supervisor.quarantined("gpu0") &&
                           system.dispatcher().isDegraded("gpu0");
    timeline.gaveUp =
        timeline.gaveUp ||
        task_a.channel->state() == recover::ChannelState::GaveUp;
    timeline.finalChannelState =
        recover::channelStateName(task_a.channel->state());
    timeline.replayedCalls = task_a.channel->replayedCalls();
    timeline.reconnects = task_a.channel->reconnects();

    /* Orderly teardown before the audit: drop both channels so
     * every grant reaches its teardown event. */
    task_a.channel.reset();
    task_b.channel.reset();
    injector.disarm();

    timeline.taskARate = series_a.ratesPerSecond(config.runForNs);
    timeline.taskBRate = series_b.ratesPerSecond(config.runForNs);
    timeline.machineRebootNs = plat.costs().machineRebootNs;
    timeline.supervisorReport = supervisor.report().dump();
    timeline.injectionReport = injector.report().dump();
    (void)auditor.finalCheck();
    timeline.auditViolations = auditor.violations().size();
    timeline.auditReport = auditor.report().dump();
    return timeline;
}

} // namespace cronus::workloads
