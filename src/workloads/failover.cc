#include "failover.hh"

#include "accel/builtin_kernels.hh"
#include "core/auto_partition.hh"
#include "core/system.hh"
#include "inject/injector.hh"
#include "inject/invariant_auditor.hh"

namespace cronus::workloads
{

using namespace core;

namespace
{

std::string
gpuManifest(const Bytes &image_bytes)
{
    Manifest m;
    m.deviceType = "gpu";
    m.images["mat.cubin"] =
        crypto::digestHex(crypto::sha256(image_bytes));
    for (const auto &fn : CudaRuntime::apiSurface())
        m.mEcalls.push_back(
            {fn, AutoPartitioner::cudaCallIsAsync(fn)});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

std::string
cpuManifest(const Bytes &image_bytes)
{
    Manifest m;
    m.deviceType = "cpu";
    m.images["mat.so"] =
        crypto::digestHex(crypto::sha256(image_bytes));
    m.mEcalls.push_back({"fo_noop", false});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

/** One matrix task bound to a GPU partition. */
struct MatrixTask
{
    CronusSystem *system = nullptr;
    std::string device;
    AppHandle cpu;
    AppHandle enclave;
    std::unique_ptr<SrpcChannel> channel;
    uint64_t vaA = 0, vaB = 0, vaC = 0;
    uint64_t dim = 0;
    bool alive = false;

    Status
    start(CronusSystem &sys, const AppHandle &cpu_enclave,
          const std::string &device_name, uint64_t matrix_dim)
    {
        system = &sys;
        cpu = cpu_enclave;
        device = device_name;
        dim = matrix_dim;

        accel::GpuModuleImage module{"mat.cubin",
                                     {"matmul_f32", "fill_f32"}};
        Bytes image = module.serialize();
        auto handle = sys.createEnclave(gpuManifest(image),
                                        "mat.cubin", image,
                                        device_name);
        if (!handle.isOk())
            return handle.status();
        enclave = handle.value();
        auto ch = sys.connect(cpu, enclave);
        if (!ch.isOk())
            return ch.status();
        channel = std::move(ch.value());

        uint64_t bytes = dim * dim * sizeof(float);
        for (uint64_t *va : {&vaA, &vaB, &vaC}) {
            auto r = channel->callSync(
                "cuMemAlloc", CudaRuntime::encodeMemAlloc(bytes));
            if (!r.isOk())
                return r.status();
            *va = CudaRuntime::decodeU64Result(r.value()).value();
        }
        uint32_t one_bits = 0x3f800000;  /* 1.0f */
        for (uint64_t va : {vaA, vaB}) {
            auto r = channel->call(
                "cuLaunchKernel",
                CudaRuntime::encodeLaunchKernel(
                    "fill_f32", {va, dim * dim, one_bits},
                    dim * dim));
            if (!r.isOk())
                return r.status();
        }
        alive = true;
        return Status::ok();
    }

    /** One task step: a matmul + sync. */
    Status
    step()
    {
        if (!alive)
            return Status(ErrorCode::InvalidState, "task down");
        auto launch = channel->call(
            "cuLaunchKernel",
            CudaRuntime::encodeLaunchKernel(
                "matmul_f32", {vaA, vaB, vaC, dim, dim, dim},
                dim * dim * dim));
        if (!launch.isOk()) {
            alive = false;
            return launch.status();
        }
        auto sync = channel->call("cuCtxSynchronize", Bytes{});
        if (!sync.isOk()) {
            alive = false;
            return sync.status();
        }
        return Status::ok();
    }
};

} // namespace

Result<FailoverTimeline>
runFailoverTimeline(const FailoverConfig &config)
{
    Logger::instance().setQuiet(true);
    accel::registerBuiltinKernels();
    auto &reg = CpuFunctionRegistry::instance();
    if (!reg.has("fo_noop")) {
        reg.registerFunction("fo_noop", [](CpuCallContext &ctx) {
            ctx.charge(1);
            return Result<Bytes>(Bytes{});
        });
    }

    CronusConfig cfg;
    cfg.numGpus = 2;
    cfg.withNpu = false;
    CronusSystem system(cfg);

    CpuImage cpu_image;
    cpu_image.exports = {"fo_noop"};
    Bytes cpu_bytes = cpu_image.serialize();
    auto cpu = system.createEnclave(cpuManifest(cpu_bytes), "mat.so",
                                    cpu_bytes);
    if (!cpu.isOk())
        return cpu.status();

    /* Audits grant accounting, streamCheck and slot lifetimes for
     * the whole run; attached before the first channel exists. */
    inject::InvariantAuditor auditor;
    auditor.attachSpm(system.spm());

    MatrixTask task_a, task_b;
    CRONUS_RETURN_IF_ERROR(
        task_a.start(system, cpu.value(), "gpu0", config.matrixDim));
    CRONUS_RETURN_IF_ERROR(
        task_b.start(system, cpu.value(), "gpu1", config.matrixDim));
    auditor.attachChannel(*task_a.channel);
    auditor.attachChannel(*task_b.channel);

    hw::Platform &plat = system.platform();
    SimTime origin = plat.clock().now();
    SimTime end_at = origin + config.runForNs;

    /* The crash is scripted, not hand-delivered: the plan kills
     * gpu0's partition on the first checked SPM access at or after
     * the crash time, and the tasks find out via proceed-trap. */
    auto gpu0_mos = system.mosForDevice("gpu0");
    if (!gpu0_mos.isOk())
        return gpu0_mos.status();
    inject::FaultPlan plan(config.faultSeed);
    plan.killAtTime(origin + config.crashAtNs,
                    gpu0_mos.value()->partitionId());
    inject::FaultInjector injector(system.spm(), plan);
    injector.arm();

    ThroughputSeries series_a(config.bucketNs);
    ThroughputSeries series_b(config.bucketNs);
    FailoverTimeline timeline;

    bool crashed = false;
    SimTime recovered_at = 0;
    while (plat.clock().now() < end_at) {
        /* Alternate the two tasks. */
        if (task_a.alive) {
            if (task_a.step().isOk()) {
                series_a.record(plat.clock().now() - origin);
            } else if (!crashed && injector.allFired()) {
                /* The injected kill surfaced through the proceed-
                 * trap path: a step's shared-memory access returned
                 * PeerFailed. Recovery runs concurrently with task
                 * B: the SPM clears + reloads gpu0's partition while
                 * gpu1 keeps serving. Task B steps fill the recovery
                 * window, then the (already-elapsed) recovery
                 * completes without charging the clock twice. */
                crashed = true;
                auto estimate = system.recoveryEstimate("gpu0");
                if (!estimate.isOk())
                    return estimate.status();
                SimTime recover_start = plat.clock().now();
                SimTime done_at = recover_start + estimate.value();
                while (plat.clock().now() < done_at &&
                       plat.clock().now() < end_at) {
                    if (!task_b.step().isOk())
                        break;
                    series_b.record(plat.clock().now() - origin);
                    ++timeline.taskBStepsDuringOutage;
                }
                plat.clock().advanceTo(done_at);
                CRONUS_RETURN_IF_ERROR(system.recover("gpu0",
                                                      false));
                CRONUS_RETURN_IF_ERROR(task_a.start(
                    system, cpu.value(), "gpu0", config.matrixDim));
                auditor.attachChannel(*task_a.channel);
                recovered_at = plat.clock().now();
                timeline.recoveryNs = recovered_at - recover_start;
                continue;
            }
        }
        if (task_b.alive) {
            if (task_b.step().isOk()) {
                SimTime when = plat.clock().now() - origin;
                series_b.record(when);
                if (crashed && recovered_at != 0 &&
                    plat.clock().now() <= recovered_at)
                    ++timeline.taskBStepsDuringOutage;
            }
        }
    }

    /* Orderly teardown before the audit: close both channels so
     * every grant reaches its teardown event. */
    task_a.channel.reset();
    task_b.channel.reset();
    injector.disarm();

    timeline.taskARate = series_a.ratesPerSecond(config.runForNs);
    timeline.taskBRate = series_b.ratesPerSecond(config.runForNs);
    timeline.machineRebootNs = plat.costs().machineRebootNs;
    timeline.injectionReport = injector.report().dump();
    (void)auditor.finalCheck();
    timeline.auditViolations = auditor.violations().size();
    timeline.auditReport = auditor.report().dump();
    return timeline;
}

} // namespace cronus::workloads
