/**
 * @file
 * TVM-like model compiler and inference driver (§VI-C, Fig. 10b).
 *
 * Lowers a DNN model into a VTA instruction stream (tiled int8
 * GEMMs + RELUs), the way TVM compiles models for the VTA NPU, and
 * measures inference latency on the NPU path or a scalar-CPU
 * fallback. Models: ResNet18, ResNet50, YoloV3 with relative FLOP
 * magnitudes matching the real networks.
 */

#ifndef CRONUS_WORKLOADS_TVM_HH
#define CRONUS_WORKLOADS_TVM_HH

#include "baseline/compute_backend.hh"

namespace cronus::workloads
{

/** A model as the TVM-like frontend sees it. */
struct TvmModel
{
    std::string name;
    /** GEMM tiles per layer (each tile is tileDim^3 MACs). */
    std::vector<uint32_t> tilesPerLayer;
    uint32_t tileDim = 16;

    uint64_t totalTiles() const;
    uint64_t totalMacs() const;
};

TvmModel tvmResnet18();
TvmModel tvmResnet50();
TvmModel tvmYolov3();

struct InferenceResult
{
    std::string model;
    std::string target;  ///< "npu" | "cpu"
    SimTime latencyNs = 0;
    bool verified = false;
};

/** Compile @p model to a VTA program per layer and run on the NPU. */
Result<InferenceResult> runInferenceNpu(
    baseline::ComputeBackend &backend, const TvmModel &model);

/** Same network on the CPU (scalar int8 GEMM, cost via cpuWork). */
Result<InferenceResult> runInferenceCpu(
    baseline::ComputeBackend &backend, const TvmModel &model);

} // namespace cronus::workloads

#endif // CRONUS_WORKLOADS_TVM_HH
