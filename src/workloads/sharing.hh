/**
 * @file
 * Spatial sharing and multi-GPU data-parallel drivers (Fig. 11).
 *
 * Fig. 11a: N mEnclaves train LeNet concurrently on ONE GPU; MPS-
 * style packing raises aggregate throughput until the SMs saturate
 * (paper: up to 63.4% at 2 enclaves, degradation at 4).
 *
 * Fig. 11b: data-parallel LeNet across 1-4 GPUs; gradients are
 * exchanged per iteration over one of three transports -- direct
 * P2P over the (trusted) PCIe shared memory, staging through secure
 * CPU memory, or encrypted staging (the HIX/Graviton approach).
 */

#ifndef CRONUS_WORKLOADS_SHARING_HH
#define CRONUS_WORKLOADS_SHARING_HH

#include "base/sim_clock.hh"
#include "base/status.hh"

namespace cronus::workloads
{

struct SpatialConfig
{
    uint32_t enclaves = 2;
    uint32_t iterationsPerEnclave = 6;
    uint32_t batchSize = 256;
    /**
     * Temporal mode: each enclave gets dedicated, serialized access
     * to the GPU (what bus-customizing hardware TEEs provide,
     * Table I). Spatial mode (default) lets the streams overlap.
     */
    bool temporal = false;
};

struct SpatialResult
{
    uint32_t enclaves = 0;
    SimTime totalTimeNs = 0;
    double imagesPerSecond = 0.0;
};

/** Fig. 11a: N LeNet trainers spatially sharing one GPU. */
Result<SpatialResult> runSpatialSharing(const SpatialConfig &config);

enum class GradTransport
{
    P2pPcie,          ///< trusted shared GPU memory over PCIe
    SecureMemStaging, ///< bounce through secure CPU memory
    EncryptedStaging, ///< bounce + AES/HMAC both ways
};

const char *gradTransportName(GradTransport transport);

struct DistributedConfig
{
    uint32_t gpus = 2;
    GradTransport transport = GradTransport::P2pPcie;
    uint32_t iterations = 6;
    uint32_t globalBatch = 256;
};

struct DistributedResult
{
    uint32_t gpus = 0;
    GradTransport transport = GradTransport::P2pPcie;
    SimTime perIterationNs = 0;
};

/** Fig. 11b: data-parallel LeNet training across @p gpus GPUs. */
Result<DistributedResult> runDataParallel(
    const DistributedConfig &config);

} // namespace cronus::workloads

#endif // CRONUS_WORKLOADS_SHARING_HH
