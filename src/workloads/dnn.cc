#include "dnn.hh"

#include <cstring>

#include "accel/gpu.hh"
#include "base/logging.hh"

namespace cronus::workloads
{

using accel::GpuAccessor;
using accel::GpuKernel;
using accel::GpuKernelRegistry;
using accel::LaunchDims;

uint64_t
ModelSpec::totalFlopsPerSample() const
{
    uint64_t total = 0;
    for (const auto &layer : layers)
        total += layer.flopsPerSample;
    return total;
}

uint64_t
ModelSpec::totalParamBytes() const
{
    uint64_t total = 0;
    for (const auto &layer : layers)
        total += layer.paramBytes;
    return total;
}

namespace
{

/** Build conv-ish layers summing to roughly the published FLOPs. */
ModelSpec
makeModel(const std::string &name, uint64_t total_mflops,
          uint64_t total_param_mb, int layer_count)
{
    ModelSpec m;
    m.name = name;
    uint64_t flops = total_mflops * 1000000ull;
    uint64_t params = total_param_mb << 20;
    for (int i = 0; i < layer_count; ++i) {
        LayerSpec layer;
        layer.name = "layer" + std::to_string(i);
        layer.flopsPerSample = flops / layer_count;
        layer.paramBytes = params / layer_count;
        m.layers.push_back(layer);
    }
    return m;
}

} // namespace

/* Published magnitudes: LeNet ~ 0.4 MFLOPs/sample (28x28),
 * ResNet50 ~ 130 MFLOPs at 32x32 (4 GFLOPs at 224), VGG16 ~ 310
 * MFLOPs at 32x32 (15.5 GFLOPs at 224), DenseNet-121 ~ 2900 MFLOPs
 * at 224x224. */
ModelSpec
lenet2()
{
    return makeModel("LeNet-2", 1, 1, 4);
}

ModelSpec
resnet50()
{
    return makeModel("ResNet50", 130, 25, 50);
}

ModelSpec
vgg16()
{
    return makeModel("VGG16", 310, 130, 16);
}

ModelSpec
densenet121()
{
    return makeModel("DenseNet", 2900, 8, 121);
}

DatasetSpec
mnist()
{
    return DatasetSpec{"MNIST", 28 * 28 * 1 * 4, 60000};
}

DatasetSpec
cifar10()
{
    return DatasetSpec{"Cifar-10", 32 * 32 * 3 * 4, 50000};
}

DatasetSpec
imagenet()
{
    return DatasetSpec{"ImageNet", 224 * 224 * 3 * 4, 1281167};
}

void
registerDnnKernels()
{
    auto &reg = GpuKernelRegistry::instance();
    if (reg.has("dnn_op"))
        return;

    /* Generic DNN layer kernel: work_items carries real FLOPs; the
     * body runs a small proxy update so data genuinely flows. */
    GpuKernel op;
    op.utilization = 0.58;  /* DNN layers rarely saturate the SMs */
    op.nsPerItem = 0.0007;  /* ~1.4 TFLOPS effective */
    op.launchOverheadNs = 6000;
    op.body = [](GpuAccessor &mem, const std::vector<uint64_t> &args,
                 const LaunchDims &) -> Status {
        if (args.size() != 2)
            return Status(ErrorCode::InvalidArgument,
                          "dnn_op: bad argument count");
        uint64_t n = args[1];
        auto buf = mem.span<float>(args[0], n);
        if (!buf.isOk())
            return buf.status();
        for (uint64_t i = 0; i < n; ++i)
            buf.value()[i] = buf.value()[i] * 0.9f + 0.01f;
        return Status::ok();
    };
    reg.registerKernel("dnn_op", op);

    /* SGD weight update: lighter, bandwidth-bound. */
    GpuKernel sgd = op;
    sgd.utilization = 0.45;
    sgd.nsPerItem = 0.00035;
    reg.registerKernel("dnn_sgd", sgd);
}

const std::vector<std::string> &
dnnKernelNames()
{
    static const std::vector<std::string> names = {"dnn_op",
                                                   "dnn_sgd"};
    return names;
}

Result<TrainResult>
trainModel(baseline::ComputeBackend &backend, const ModelSpec &model,
           const DatasetSpec &dataset, const TrainConfig &config)
{
    registerDnnKernels();

    /* Device-side proxy activation buffer shared by all layers. */
    constexpr uint64_t kProxyFloats = 1024;
    auto scratch = backend.gpuAlloc(kProxyFloats * sizeof(float));
    if (!scratch.isOk())
        return scratch.status();
    std::vector<float> init(kProxyFloats, 1.0f);
    Bytes init_bytes(reinterpret_cast<uint8_t *>(init.data()),
                     reinterpret_cast<uint8_t *>(init.data()) +
                         init.size() * sizeof(float));
    CRONUS_RETURN_IF_ERROR(
        backend.copyToGpu(scratch.value(), init_bytes));

    /* Batch staging buffer: the real batch bytes move each
     * iteration (this is what differentiates systems on memcpy
     * cost). Cap the functional copy at 256 KiB so host RAM stays
     * small; the timing already scales with the copied size. */
    uint64_t batch_bytes = std::min<uint64_t>(
        dataset.sampleBytes * config.batchSize, 256 * 1024);
    auto batch_va = backend.gpuAlloc(batch_bytes);
    if (!batch_va.isOk())
        return batch_va.status();
    Bytes batch(batch_bytes, 0x3c);

    TrainResult result;
    result.model = model.name;
    result.dataset = dataset.name;

    /* Warm-up iteration (builds channels/contexts). */
    SimTime start = 0;
    for (uint32_t iter = 0; iter <= config.iterations; ++iter) {
        if (iter == 1)
            start = backend.now();

        /* 1. Batch to device. */
        CRONUS_RETURN_IF_ERROR(
            backend.copyToGpu(batch_va.value(), batch));

        /* 2. Forward: one launch per layer. */
        for (const auto &layer : model.layers) {
            uint64_t flops = layer.flopsPerSample * config.batchSize;
            CRONUS_RETURN_IF_ERROR(backend.launchKernel(
                "dnn_op", {scratch.value(), kProxyFloats}, flops));
            if (iter > 0)
                ++result.kernelLaunches;
        }
        /* 3. Backward: ~2x forward FLOPs, one launch per layer. */
        for (const auto &layer : model.layers) {
            uint64_t flops =
                2 * layer.flopsPerSample * config.batchSize;
            CRONUS_RETURN_IF_ERROR(backend.launchKernel(
                "dnn_op", {scratch.value(), kProxyFloats}, flops));
            if (iter > 0)
                ++result.kernelLaunches;
        }
        /* 4. Optimizer: one update launch per layer, work = params. */
        for (const auto &layer : model.layers) {
            uint64_t elems = layer.paramBytes / 4;
            CRONUS_RETURN_IF_ERROR(backend.launchKernel(
                "dnn_sgd", {scratch.value(), kProxyFloats},
                std::max<uint64_t>(elems, 1)));
            if (iter > 0)
                ++result.kernelLaunches;
        }
        /* 5. Loss readback: the per-iteration sync point. */
        auto loss = backend.copyFromGpu(scratch.value(),
                                        sizeof(float));
        if (!loss.isOk())
            return loss.status();
        std::memcpy(&result.finalLoss, loss.value().data(),
                    sizeof(float));

        /* 6. Host-side data loading / bookkeeping. */
        CRONUS_RETURN_IF_ERROR(
            backend.cpuWork(20 * config.batchSize));
    }

    result.totalTimeNs = backend.now() - start;
    result.perIterationNs = result.totalTimeNs / config.iterations;
    return result;
}

} // namespace cronus::workloads
