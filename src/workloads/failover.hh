/**
 * @file
 * Failover timeline driver (§VI-D, Fig. 9).
 *
 * Two matrix-computing tasks run on separate S-EL2 partitions (two
 * GPUs). Mid-run, one partition is crashed by a deterministic fault
 * plan (src/inject/): the injected kill fires inside a checked SPM
 * access, so the victim's peers discover it through the proceed-trap
 * path exactly as on real hardware. CRONUS's recovery restarts only
 * the fault-inducing partition (hundreds of ms) and the other task
 * is never interrupted; the monolithic comparator reboots the whole
 * machine (minutes) and loses both. An InvariantAuditor rides along
 * and the timeline carries its report.
 */

#ifndef CRONUS_WORKLOADS_FAILOVER_HH
#define CRONUS_WORKLOADS_FAILOVER_HH

#include "base/stats.hh"
#include "base/status.hh"

namespace cronus::workloads
{

struct FailoverConfig
{
    SimTime runForNs = 3 * kNsPerSec;
    SimTime crashAtNs = 1 * kNsPerSec;
    SimTime bucketNs = 100 * kNsPerMs;
    /** Matrix dimension per task step. */
    uint64_t matrixDim = 48;
    /** Seed of the deterministic fault plan (src/inject/). */
    uint64_t faultSeed = 1;
};

struct FailoverTimeline
{
    /** Completed task steps per second, per time bucket. */
    std::vector<double> taskARate;
    std::vector<double> taskBRate;
    /** Virtual time from crash to task A serving again. */
    SimTime recoveryNs = 0;
    /** The monolithic comparator: whole-machine reboot time. */
    SimTime machineRebootNs = 0;
    /** Task B steps completed while A was down (isolation proof). */
    uint64_t taskBStepsDuringOutage = 0;
    /** Fault-injection log (JSON) from the FaultInjector. */
    std::string injectionReport;
    /** Invariant audit report (JSON) from the InvariantAuditor. */
    std::string auditReport;
    /** Violations the auditor recorded; a clean run has zero. */
    uint64_t auditViolations = 0;
};

Result<FailoverTimeline> runFailoverTimeline(
    const FailoverConfig &config);

} // namespace cronus::workloads

#endif // CRONUS_WORKLOADS_FAILOVER_HH
