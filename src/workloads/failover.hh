/**
 * @file
 * Failover timeline driver (§VI-D, Fig. 9).
 *
 * Two matrix-computing tasks run on separate S-EL2 partitions (two
 * GPUs). Mid-run, one partition is crashed. CRONUS's proceed-trap
 * recovery restarts only the fault-inducing partition (hundreds of
 * ms) and the other task is never interrupted; the monolithic
 * comparator reboots the whole machine (minutes) and loses both.
 */

#ifndef CRONUS_WORKLOADS_FAILOVER_HH
#define CRONUS_WORKLOADS_FAILOVER_HH

#include "base/stats.hh"
#include "base/status.hh"

namespace cronus::workloads
{

struct FailoverConfig
{
    SimTime runForNs = 3 * kNsPerSec;
    SimTime crashAtNs = 1 * kNsPerSec;
    SimTime bucketNs = 100 * kNsPerMs;
    /** Matrix dimension per task step. */
    uint64_t matrixDim = 48;
};

struct FailoverTimeline
{
    /** Completed task steps per second, per time bucket. */
    std::vector<double> taskARate;
    std::vector<double> taskBRate;
    /** Virtual time from crash to task A serving again. */
    SimTime recoveryNs = 0;
    /** The monolithic comparator: whole-machine reboot time. */
    SimTime machineRebootNs = 0;
    /** Task B steps completed while A was down (isolation proof). */
    uint64_t taskBStepsDuringOutage = 0;
};

Result<FailoverTimeline> runFailoverTimeline(
    const FailoverConfig &config);

} // namespace cronus::workloads

#endif // CRONUS_WORKLOADS_FAILOVER_HH
