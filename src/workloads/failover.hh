/**
 * @file
 * Failover timeline driver (§VI-D, Fig. 9), supervised edition.
 *
 * Two matrix-computing tasks run on separate S-EL2 partitions (two
 * GPUs). Mid-run, one partition is crashed by a deterministic fault
 * plan (src/inject/): the injected kill fires inside a checked SPM
 * access, so the victim's peers discover it through the proceed-trap
 * path exactly as on real hardware. Recovery is *not* hand-scripted:
 * a Supervisor (src/recover/) stages backoff + scrub + reboot under
 * a restart budget, and task A rides a ResumableChannel that parks
 * on PeerFailed, reconnects to the recovered incarnation (re-running
 * attestation + dCheck), restores the sealed checkpoint and replays
 * the un-acked in-flight calls. Task B is never interrupted; the
 * monolithic comparator reboots the whole machine (minutes) and
 * loses both. With crashLoop set, the plan kills every incarnation
 * until the budget is exhausted and the run must end in quarantine
 * with the channel reporting GaveUp. An InvariantAuditor rides along
 * and the timeline carries its report.
 */

#ifndef CRONUS_WORKLOADS_FAILOVER_HH
#define CRONUS_WORKLOADS_FAILOVER_HH

#include "base/stats.hh"
#include "base/status.hh"

namespace cronus::workloads
{

struct FailoverConfig
{
    SimTime runForNs = 3 * kNsPerSec;
    SimTime crashAtNs = 1 * kNsPerSec;
    SimTime bucketNs = 100 * kNsPerMs;
    /** Matrix dimension per task step. */
    uint64_t matrixDim = 48;
    /** Seed of the deterministic fault plan (src/inject/). */
    uint64_t faultSeed = 1;
    /** Kill every new incarnation of task A's partition until the
     *  restart budget is exhausted (quarantine path). */
    bool crashLoop = false;
    /* Supervisor policy (src/recover/). */
    uint32_t restartBudget = 3;
    SimTime backoffBaseNs = 20 * kNsPerMs;
    /** Auto-checkpoint cadence of task A's channel (calls). */
    uint64_t checkpointEvery = 8;
};

struct FailoverTimeline
{
    /** Completed task steps per second, per time bucket. */
    std::vector<double> taskARate;
    std::vector<double> taskBRate;
    /** Virtual time from crash to task A serving again. */
    SimTime recoveryNs = 0;
    /** The monolithic comparator: whole-machine reboot time. */
    SimTime machineRebootNs = 0;
    /** Task B steps completed while A was down (isolation proof). */
    uint64_t taskBStepsDuringOutage = 0;
    /** Journaled calls replayed into recovered incarnations. */
    uint64_t replayedCalls = 0;
    /** Successful channel reconnects (one per survived kill). */
    uint64_t reconnects = 0;
    /** Task A's channel gave up (crash-loop path). */
    bool gaveUp = false;
    /** gpu0 ended the run quarantined on the dispatcher. */
    bool quarantined = false;
    /** Task A channel state at the end ("live"/"parked"/...). */
    std::string finalChannelState;
    /** Supervisor event log + per-device health (JSON). */
    std::string supervisorReport;
    /** Fault-injection log (JSON) from the FaultInjector. */
    std::string injectionReport;
    /** Invariant audit report (JSON) from the InvariantAuditor. */
    std::string auditReport;
    /** Violations the auditor recorded; a clean run has zero. */
    uint64_t auditViolations = 0;
};

Result<FailoverTimeline> runFailoverTimeline(
    const FailoverConfig &config);

} // namespace cronus::workloads

#endif // CRONUS_WORKLOADS_FAILOVER_HH
