#include "sharing.hh"

#include "core/auto_partition.hh"
#include "core/system.hh"
#include "dnn.hh"

namespace cronus::workloads
{

using namespace core;

namespace
{

std::string
gpuManifest(const Bytes &image_bytes)
{
    Manifest m;
    m.deviceType = "gpu";
    m.images["train.cubin"] =
        crypto::digestHex(crypto::sha256(image_bytes));
    for (const auto &fn : CudaRuntime::apiSurface())
        m.mEcalls.push_back(
            {fn, AutoPartitioner::cudaCallIsAsync(fn)});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

std::string
cpuManifest(const Bytes &image_bytes)
{
    Manifest m;
    m.deviceType = "cpu";
    m.images["train.so"] =
        crypto::digestHex(crypto::sha256(image_bytes));
    m.mEcalls.push_back({"share_noop", false});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

struct Trainer
{
    AppHandle enclave;
    std::unique_ptr<SrpcChannel> channel;
    uint64_t scratchVa = 0;
    uint64_t batchVa = 0;
};

/** Build a CRONUS machine with one CPU enclave plus N CUDA
 *  enclaves (optionally each pinned to its own GPU). */
struct Cluster
{
    std::unique_ptr<CronusSystem> system;
    AppHandle cpu;
    std::vector<Trainer> trainers;

    Status
    init(uint32_t num_gpus, uint32_t num_trainers, bool per_gpu)
    {
        Logger::instance().setQuiet(true);
        registerDnnKernels();
        auto &reg = CpuFunctionRegistry::instance();
        if (!reg.has("share_noop")) {
            reg.registerFunction("share_noop",
                                 [](CpuCallContext &ctx) {
                                     ctx.charge(1);
                                     return Result<Bytes>(Bytes{});
                                 });
        }

        CronusConfig cfg;
        cfg.numGpus = num_gpus;
        cfg.withNpu = false;
        system = std::make_unique<CronusSystem>(cfg);

        CpuImage cpu_image;
        cpu_image.exports = {"share_noop"};
        Bytes cpu_bytes = cpu_image.serialize();
        auto cpu_enclave = system->createEnclave(
            cpuManifest(cpu_bytes), "train.so", cpu_bytes);
        if (!cpu_enclave.isOk())
            return cpu_enclave.status();
        cpu = cpu_enclave.value();

        accel::GpuModuleImage module{"train.cubin",
                                     dnnKernelNames()};
        Bytes gpu_bytes = module.serialize();
        for (uint32_t i = 0; i < num_trainers; ++i) {
            std::string device =
                per_gpu ? "gpu" + std::to_string(i) : "gpu0";
            auto enclave = system->createEnclave(
                gpuManifest(gpu_bytes), "train.cubin", gpu_bytes,
                device);
            if (!enclave.isOk())
                return enclave.status();
            auto channel = system->connect(cpu, enclave.value());
            if (!channel.isOk())
                return channel.status();
            Trainer t;
            t.enclave = enclave.value();
            t.channel = std::move(channel.value());
            auto scratch = t.channel->callSync(
                "cuMemAlloc", CudaRuntime::encodeMemAlloc(4096));
            if (!scratch.isOk())
                return scratch.status();
            t.scratchVa = CudaRuntime::decodeU64Result(
                scratch.value()).value();
            auto batch = t.channel->callSync(
                "cuMemAlloc", CudaRuntime::encodeMemAlloc(64 * 1024));
            if (!batch.isOk())
                return batch.status();
            t.batchVa = CudaRuntime::decodeU64Result(
                batch.value()).value();
            trainers.push_back(std::move(t));
        }
        return Status::ok();
    }

    /** One LeNet iteration for trainer @p t, fully asynchronous. */
    Status
    issueIteration(Trainer &t, const ModelSpec &model,
                   uint32_t batch_size)
    {
        Bytes batch(16 * 1024, 0x11);  /* capped staging copy */
        auto copy = t.channel->call(
            "cuMemcpyHtoD",
            CudaRuntime::encodeMemcpyHtoD(t.batchVa, batch));
        if (!copy.isOk())
            return copy.status();
        for (const auto &layer : model.layers) {
            /* forward + backward */
            for (uint64_t mult : {uint64_t(1), uint64_t(2)}) {
                auto r = t.channel->call(
                    "cuLaunchKernel",
                    CudaRuntime::encodeLaunchKernel(
                        "dnn_op", {t.scratchVa, 1024},
                        mult * layer.flopsPerSample * batch_size));
                if (!r.isOk())
                    return r.status();
            }
        }
        return Status::ok();
    }

    /**
     * Interleave executor progress across all channels so kernel
     * submission (and hence GPU streams) genuinely overlap; a
     * per-channel drain would serialize the devices.
     */
    void
    pumpRoundRobin()
    {
        bool any = true;
        while (any) {
            any = false;
            for (auto &t : trainers)
                any |= t.channel->pump(1) > 0;
        }
    }

    Status
    drainAll()
    {
        pumpRoundRobin();
        for (auto &t : trainers) {
            auto r = t.channel->call("cuCtxSynchronize", Bytes{});
            if (!r.isOk())
                return r.status();
        }
        return Status::ok();
    }
};

} // namespace

Result<SpatialResult>
runSpatialSharing(const SpatialConfig &config)
{
    Cluster cluster;
    CRONUS_RETURN_IF_ERROR(cluster.init(1, config.enclaves, false));

    ModelSpec model = lenet2();
    SimTime start = cluster.system->platform().clock().now();

    if (config.temporal) {
        /* Temporal sharing: take turns with dedicated access; each
         * enclave's work fully drains before the next runs. */
        for (uint32_t iter = 0; iter < config.iterationsPerEnclave;
             ++iter) {
            for (auto &t : cluster.trainers) {
                CRONUS_RETURN_IF_ERROR(cluster.issueIteration(
                    t, model, config.batchSize));
                while (t.channel->pump(8) > 0) {}
                auto sync = t.channel->call("cuCtxSynchronize",
                                            Bytes{});
                if (!sync.isOk())
                    return sync.status();
            }
        }
    } else {
        /* Round-robin so the enclaves' kernel streams overlap on
         * the device -- that is what spatial sharing packs. */
        for (uint32_t iter = 0; iter < config.iterationsPerEnclave;
             ++iter) {
            for (auto &t : cluster.trainers)
                CRONUS_RETURN_IF_ERROR(cluster.issueIteration(
                    t, model, config.batchSize));
            cluster.pumpRoundRobin();
        }
        CRONUS_RETURN_IF_ERROR(cluster.drainAll());
    }

    SpatialResult result;
    result.enclaves = config.enclaves;
    result.totalTimeNs =
        cluster.system->platform().clock().now() - start;
    uint64_t images = uint64_t(config.enclaves) *
                      config.iterationsPerEnclave *
                      config.batchSize;
    result.imagesPerSecond =
        result.totalTimeNs == 0
            ? 0.0
            : images * double(kNsPerSec) / result.totalTimeNs;
    return result;
}

const char *
gradTransportName(GradTransport transport)
{
    switch (transport) {
      case GradTransport::P2pPcie:          return "p2p-pcie";
      case GradTransport::SecureMemStaging: return "secure-mem";
      case GradTransport::EncryptedStaging: return "encrypted";
    }
    return "unknown";
}

Result<DistributedResult>
runDataParallel(const DistributedConfig &config)
{
    Cluster cluster;
    CRONUS_RETURN_IF_ERROR(
        cluster.init(config.gpus, config.gpus, true));

    ModelSpec model = lenet2();
    hw::Platform &plat = cluster.system->platform();
    const CostModel &costs = plat.costs();
    uint64_t grad_bytes = model.totalParamBytes();
    uint32_t local_batch =
        std::max<uint32_t>(config.globalBatch / config.gpus, 1);

    /* For P2P, establish real trusted shared memory between
     * neighbouring GPU partitions (the paper: "CRONUS supports
     * shared GPU memory to enable direct GPU communication over
     * PCIe"), and push one page of actual gradient bytes through it
     * per ring step so the data path is exercised, not just
     * costed. */
    struct P2pLink
    {
        tee::PartitionId from = 0, to = 0;
        tee::PhysAddr page = 0;
    };
    std::vector<P2pLink> links;
    if (config.gpus > 1 &&
        config.transport == GradTransport::P2pPcie) {
        tee::Spm &spm = cluster.system->spm();
        for (uint32_t g = 0; g < config.gpus; ++g) {
            auto from = cluster.system->mosForDevice(
                "gpu" + std::to_string(g));
            auto to = cluster.system->mosForDevice(
                "gpu" + std::to_string((g + 1) % config.gpus));
            if (!from.isOk() || !to.isOk())
                return Status(ErrorCode::NotFound, "gpu mos");
            auto page = from.value()->shimKernel().allocPages(1);
            if (!page.isOk())
                return page.status();
            auto grant = spm.sharePages(
                from.value()->partitionId(),
                to.value()->partitionId(), page.value(), 1);
            if (!grant.isOk())
                return grant.status();
            links.push_back({from.value()->partitionId(),
                             to.value()->partitionId(),
                             page.value()});
        }
    }

    SimTime start = plat.clock().now();
    for (uint32_t iter = 0; iter < config.iterations; ++iter) {
        /* Compute phase: all GPUs work concurrently on their
         * shard. */
        for (auto &t : cluster.trainers)
            CRONUS_RETURN_IF_ERROR(cluster.issueIteration(
                t, model, local_batch));
        cluster.pumpRoundRobin();
        CRONUS_RETURN_IF_ERROR(cluster.drainAll());

        /* Gradient exchange: ring all-reduce, 2(N-1) steps each
         * moving grad_bytes/N between neighbours. All GPUs transfer
         * concurrently within a ring step, so the serialized cost
         * is per-step, not per-link. */
        if (config.gpus > 1) {
            uint64_t chunk = grad_bytes / config.gpus;
            uint64_t steps = 2ull * (config.gpus - 1);
            for (uint64_t s = 0; s < steps; ++s) {
                switch (config.transport) {
                  case GradTransport::P2pPcie: {
                    /* One DMA hop GPU->GPU over the secure PCIe
                     * bus via trusted shared GPU memory; a page of
                     * real gradient bytes flows per step. */
                    tee::Spm &spm = cluster.system->spm();
                    for (const auto &link : links) {
                        Bytes grad_page(hw::kPageSize,
                                        uint8_t(0x40 + s + iter));
                        Status w = spm.write(link.from, link.page,
                                             grad_page);
                        if (!w.isOk())
                            return w;
                        auto r = spm.read(link.to, link.page,
                                          hw::kPageSize);
                        if (!r.isOk())
                            return r.status();
                        if (r.value() != grad_page)
                            return Status(
                                ErrorCode::IntegrityViolation,
                                "p2p gradient bytes corrupted");
                    }
                    plat.chargeDma(chunk);
                    break;
                  }
                  case GradTransport::SecureMemStaging:
                    /* GPU -> secure CPU memory -> GPU. */
                    plat.chargeDma(chunk);
                    plat.chargeMemcpy(chunk);
                    plat.chargeDma(chunk);
                    break;
                  case GradTransport::EncryptedStaging:
                    plat.chargeDma(chunk);
                    plat.chargeMemcpy(chunk);
                    plat.clock().advance(static_cast<SimTime>(
                        2 * chunk * (costs.aesNsPerByte +
                                     costs.hmacNsPerByte)));
                    plat.chargeDma(chunk);
                    break;
                }
            }
        }
    }

    DistributedResult result;
    result.gpus = config.gpus;
    result.transport = config.transport;
    result.perIterationNs =
        (plat.clock().now() - start) / config.iterations;
    return result;
}

} // namespace cronus::workloads
