#include "rodinia.hh"

#include <cmath>
#include <cstring>
#include <functional>

#include "accel/gpu.hh"
#include "base/logging.hh"
#include "base/rng.hh"

namespace cronus::workloads
{

using accel::GpuAccessor;
using accel::GpuKernel;
using accel::GpuKernelRegistry;
using accel::LaunchDims;
using baseline::ComputeBackend;

namespace
{

/* ---------------- helpers ---------------- */

Bytes
floatsToBytes(const std::vector<float> &v)
{
    const uint8_t *p = reinterpret_cast<const uint8_t *>(v.data());
    return Bytes(p, p + v.size() * sizeof(float));
}

std::vector<float>
bytesToFloats(const Bytes &b)
{
    std::vector<float> out(b.size() / sizeof(float));
    std::memcpy(out.data(), b.data(), out.size() * sizeof(float));
    return out;
}

Bytes
intsToBytes(const std::vector<int32_t> &v)
{
    const uint8_t *p = reinterpret_cast<const uint8_t *>(v.data());
    return Bytes(p, p + v.size() * sizeof(int32_t));
}

std::vector<int32_t>
bytesToInts(const Bytes &b)
{
    std::vector<int32_t> out(b.size() / sizeof(int32_t));
    std::memcpy(out.data(), b.data(), out.size() * sizeof(int32_t));
    return out;
}

bool
nearlyEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        float diff = std::fabs(a[i] - b[i]);
        float mag = std::max(std::fabs(a[i]), std::fabs(b[i]));
        if (diff > 1e-3f * std::max(mag, 1.0f))
            return false;
    }
    return true;
}

Status
needArgs(const std::vector<uint64_t> &args, size_t n,
         const char *kernel)
{
    if (args.size() != n)
        return Status(ErrorCode::InvalidArgument,
                      std::string(kernel) + ": bad argument count");
    return Status::ok();
}

/* ---------------- kernel bodies ---------------- */

Status
gaussianBody(GpuAccessor &mem, const std::vector<uint64_t> &args,
             const LaunchDims &)
{
    CRONUS_RETURN_IF_ERROR(needArgs(args, 3, "rodinia_gaussian"));
    uint64_t n = args[1], k = args[2];
    auto a = mem.span<float>(args[0], n * n);
    if (!a.isOk())
        return a.status();
    float *m = a.value();
    float pivot = m[k * n + k];
    if (pivot == 0.0f)
        return Status(ErrorCode::InvalidArgument, "singular pivot");
    for (uint64_t i = k + 1; i < n; ++i) {
        float factor = m[i * n + k] / pivot;
        for (uint64_t j = k; j < n; ++j)
            m[i * n + j] -= factor * m[k * n + j];
    }
    return Status::ok();
}

Status
hotspotBody(GpuAccessor &mem, const std::vector<uint64_t> &args,
            const LaunchDims &)
{
    CRONUS_RETURN_IF_ERROR(needArgs(args, 5, "rodinia_hotspot"));
    uint64_t rows = args[3], cols = args[4];
    auto tin = mem.constSpan<float>(args[0], rows * cols);
    auto tout = mem.span<float>(args[1], rows * cols);
    auto power = mem.constSpan<float>(args[2], rows * cols);
    if (!tin.isOk() || !tout.isOk() || !power.isOk())
        return Status(ErrorCode::AccessFault, "hotspot span fault");
    const float *in = tin.value();
    const float *pw = power.value();
    float *out = tout.value();
    for (uint64_t r = 0; r < rows; ++r) {
        for (uint64_t c = 0; c < cols; ++c) {
            float center = in[r * cols + c];
            float up = r > 0 ? in[(r - 1) * cols + c] : center;
            float down = r + 1 < rows ? in[(r + 1) * cols + c]
                                      : center;
            float left = c > 0 ? in[r * cols + c - 1] : center;
            float right = c + 1 < cols ? in[r * cols + c + 1]
                                       : center;
            float lap = (up + down + left + right) * 0.25f - center;
            out[r * cols + c] =
                center + 0.5f * lap + 0.05f * pw[r * cols + c];
        }
    }
    return Status::ok();
}

Status
pathfinderBody(GpuAccessor &mem, const std::vector<uint64_t> &args,
               const LaunchDims &)
{
    CRONUS_RETURN_IF_ERROR(needArgs(args, 5, "rodinia_pathfinder"));
    uint64_t cols = args[3], row = args[4];
    auto prev = mem.constSpan<float>(args[0], cols);
    auto cur = mem.span<float>(args[1], cols);
    auto wall = mem.constSpan<float>(args[2], cols * (row + 1));
    if (!prev.isOk() || !cur.isOk() || !wall.isOk())
        return Status(ErrorCode::AccessFault, "pathfinder fault");
    for (uint64_t j = 0; j < cols; ++j) {
        float best = prev.value()[j];
        if (j > 0)
            best = std::min(best, prev.value()[j - 1]);
        if (j + 1 < cols)
            best = std::min(best, prev.value()[j + 1]);
        cur.value()[j] = wall.value()[row * cols + j] + best;
    }
    return Status::ok();
}

Status
bfsBody(GpuAccessor &mem, const std::vector<uint64_t> &args,
        const LaunchDims &)
{
    CRONUS_RETURN_IF_ERROR(needArgs(args, 5, "rodinia_bfs"));
    uint64_t n = args[3];
    int32_t level = static_cast<int32_t>(args[4]);
    auto offsets = mem.constSpan<int32_t>(args[0], n + 1);
    if (!offsets.isOk())
        return offsets.status();
    uint64_t n_edges = offsets.value()[n];
    auto edges = mem.constSpan<int32_t>(args[1], n_edges);
    auto levels = mem.span<int32_t>(args[2], n);
    if (!edges.isOk() || !levels.isOk())
        return Status(ErrorCode::AccessFault, "bfs span fault");
    for (uint64_t v = 0; v < n; ++v) {
        if (levels.value()[v] != level)
            continue;
        for (int32_t e = offsets.value()[v];
             e < offsets.value()[v + 1]; ++e) {
            int32_t to = edges.value()[e];
            if (levels.value()[to] < 0)
                levels.value()[to] = level + 1;
        }
    }
    return Status::ok();
}

Status
nwBody(GpuAccessor &mem, const std::vector<uint64_t> &args,
       const LaunchDims &)
{
    CRONUS_RETURN_IF_ERROR(needArgs(args, 6, "rodinia_nw"));
    uint64_t cols = args[4], row = args[5];
    auto prev = mem.constSpan<int32_t>(args[0], cols);
    auto cur = mem.span<int32_t>(args[1], cols);
    auto seq_a = mem.constSpan<int32_t>(args[2], row + 1);
    auto seq_b = mem.constSpan<int32_t>(args[3], cols);
    if (!prev.isOk() || !cur.isOk() || !seq_a.isOk() || !seq_b.isOk())
        return Status(ErrorCode::AccessFault, "nw span fault");
    const int32_t penalty = 1;
    cur.value()[0] = prev.value()[0] - penalty;
    for (uint64_t j = 1; j < cols; ++j) {
        int32_t match = seq_a.value()[row] == seq_b.value()[j] ? 2
                                                               : -1;
        int32_t best = prev.value()[j - 1] + match;
        best = std::max(best, prev.value()[j] - penalty);
        best = std::max(best, cur.value()[j - 1] - penalty);
        cur.value()[j] = best;
    }
    return Status::ok();
}

Status
sradBody(GpuAccessor &mem, const std::vector<uint64_t> &args,
         const LaunchDims &)
{
    CRONUS_RETURN_IF_ERROR(needArgs(args, 4, "rodinia_srad"));
    uint64_t rows = args[2], cols = args[3];
    auto img = mem.constSpan<float>(args[0], rows * cols);
    auto out = mem.span<float>(args[1], rows * cols);
    if (!img.isOk() || !out.isOk())
        return Status(ErrorCode::AccessFault, "srad span fault");
    const float *in = img.value();
    for (uint64_t r = 0; r < rows; ++r) {
        for (uint64_t c = 0; c < cols; ++c) {
            float center = in[r * cols + c];
            float up = r > 0 ? in[(r - 1) * cols + c] : center;
            float left = c > 0 ? in[r * cols + c - 1] : center;
            float gx = up - center;
            float gy = left - center;
            float grad2 = gx * gx + gy * gy;
            float coeff = 1.0f / (1.0f + grad2);
            out.value()[r * cols + c] =
                center + 0.25f * coeff * (gx + gy);
        }
    }
    return Status::ok();
}

Status
backpropBody(GpuAccessor &mem, const std::vector<uint64_t> &args,
             const LaunchDims &)
{
    CRONUS_RETURN_IF_ERROR(needArgs(args, 5, "rodinia_backprop"));
    uint64_t n_in = args[3], n_out = args[4];
    auto in = mem.constSpan<float>(args[0], n_in);
    auto w = mem.constSpan<float>(args[1], n_in * n_out);
    auto out = mem.span<float>(args[2], n_out);
    if (!in.isOk() || !w.isOk() || !out.isOk())
        return Status(ErrorCode::AccessFault, "backprop span fault");
    for (uint64_t j = 0; j < n_out; ++j) {
        float acc = 0.0f;
        for (uint64_t i = 0; i < n_in; ++i)
            acc += in.value()[i] * w.value()[i * n_out + j];
        out.value()[j] = std::tanh(acc);
    }
    return Status::ok();
}

Status
ludBody(GpuAccessor &mem, const std::vector<uint64_t> &args,
        const LaunchDims &)
{
    CRONUS_RETURN_IF_ERROR(needArgs(args, 3, "rodinia_lud"));
    uint64_t n = args[1], k = args[2];
    auto a = mem.span<float>(args[0], n * n);
    if (!a.isOk())
        return a.status();
    float *m = a.value();
    float pivot = m[k * n + k];
    if (pivot == 0.0f)
        return Status(ErrorCode::InvalidArgument, "singular pivot");
    for (uint64_t i = k + 1; i < n; ++i)
        m[i * n + k] /= pivot;
    for (uint64_t i = k + 1; i < n; ++i) {
        for (uint64_t j = k + 1; j < n; ++j)
            m[i * n + j] -= m[i * n + k] * m[k * n + j];
    }
    return Status::ok();
}

Status
kmeansBody(GpuAccessor &mem, const std::vector<uint64_t> &args,
           const LaunchDims &)
{
    CRONUS_RETURN_IF_ERROR(needArgs(args, 6, "rodinia_kmeans"));
    uint64_t n = args[3], k = args[4], dim = args[5];
    auto points = mem.constSpan<float>(args[0], n * dim);
    auto centroids = mem.constSpan<float>(args[1], k * dim);
    auto assign = mem.span<int32_t>(args[2], n);
    if (!points.isOk() || !centroids.isOk() || !assign.isOk())
        return Status(ErrorCode::AccessFault, "kmeans span fault");
    for (uint64_t p = 0; p < n; ++p) {
        float best = 1e30f;
        int32_t best_c = 0;
        for (uint64_t c = 0; c < k; ++c) {
            float dist = 0.0f;
            for (uint64_t d = 0; d < dim; ++d) {
                float diff = points.value()[p * dim + d] -
                             centroids.value()[c * dim + d];
                dist += diff * diff;
            }
            if (dist < best) {
                best = dist;
                best_c = static_cast<int32_t>(c);
            }
        }
        assign.value()[p] = best_c;
    }
    return Status::ok();
}

struct KernelSpec
{
    const char *name;
    Status (*body)(GpuAccessor &, const std::vector<uint64_t> &,
                   const LaunchDims &);
    double utilization;
    double nsPerItem;
};

const KernelSpec kSpecs[] = {
    {"rodinia_gaussian", gaussianBody, 0.90, 0.020},
    {"rodinia_hotspot", hotspotBody, 0.85, 0.060},
    {"rodinia_pathfinder", pathfinderBody, 0.60, 0.050},
    {"rodinia_bfs", bfsBody, 0.55, 0.080},
    {"rodinia_nw", nwBody, 0.50, 0.070},
    {"rodinia_srad", sradBody, 0.85, 0.070},
    {"rodinia_backprop", backpropBody, 0.80, 0.025},
    {"rodinia_lud", ludBody, 0.90, 0.022},
    {"rodinia_kmeans", kmeansBody, 0.88, 0.030},
};

} // namespace

void
registerRodiniaKernels()
{
    auto &reg = GpuKernelRegistry::instance();
    if (reg.has("rodinia_gaussian"))
        return;
    for (const auto &spec : kSpecs) {
        GpuKernel kernel;
        kernel.body = spec.body;
        kernel.utilization = spec.utilization;
        kernel.nsPerItem = spec.nsPerItem;
        reg.registerKernel(spec.name, kernel);
    }
}

const std::vector<std::string> &
rodiniaKernelNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &spec : kSpecs)
            out.push_back(spec.name);
        return out;
    }();
    return names;
}

const std::vector<std::string> &
rodiniaBenchmarks()
{
    static const std::vector<std::string> names = {
        "gaussian", "hotspot", "pathfinder", "bfs",      "nw",
        "srad",     "backprop", "lud",       "kmeans"};
    return names;
}

namespace
{

/* ---------------- drivers ---------------- */

struct Ctx
{
    ComputeBackend &b;
    Rng rng;

    explicit Ctx(ComputeBackend &backend, uint64_t seed)
        : b(backend), rng(seed) {}

    Result<uint64_t>
    uploadFloats(const std::vector<float> &v)
    {
        auto va = b.gpuAlloc(v.size() * sizeof(float));
        if (!va.isOk())
            return va;
        Status s = b.copyToGpu(va.value(), floatsToBytes(v));
        if (!s.isOk())
            return s;
        return va;
    }

    Result<uint64_t>
    uploadInts(const std::vector<int32_t> &v)
    {
        auto va = b.gpuAlloc(v.size() * sizeof(int32_t));
        if (!va.isOk())
            return va;
        Status s = b.copyToGpu(va.value(), intsToBytes(v));
        if (!s.isOk())
            return s;
        return va;
    }

    std::vector<float>
    randomFloats(size_t n, float lo = 0.0f, float hi = 1.0f)
    {
        std::vector<float> out(n);
        for (auto &v : out)
            v = static_cast<float>(rng.nextRange(lo, hi));
        return out;
    }
};

Result<RodiniaResult>
runGaussian(Ctx &ctx, const RodiniaSize &size)
{
    uint64_t n = std::min<uint64_t>(size.scale, 96);
    std::vector<float> a = ctx.randomFloats(n * n, 1.0f, 2.0f);
    for (uint64_t i = 0; i < n; ++i)
        a[i * n + i] += n;  /* diagonally dominant */
    std::vector<float> host = a;

    auto va = ctx.uploadFloats(a);
    if (!va.isOk())
        return va.status();
    for (uint64_t k = 0; k + 1 < n; ++k) {
        CRONUS_RETURN_IF_ERROR(ctx.b.launchKernel(
            "rodinia_gaussian", {va.value(), n, k},
            (n - k) * (n - k)));
    }
    auto out = ctx.b.copyFromGpu(va.value(), n * n * sizeof(float));
    if (!out.isOk())
        return out.status();

    for (uint64_t k = 0; k + 1 < n; ++k) {
        float pivot = host[k * n + k];
        for (uint64_t i = k + 1; i < n; ++i) {
            float factor = host[i * n + k] / pivot;
            for (uint64_t j = k; j < n; ++j)
                host[i * n + j] -= factor * host[k * n + j];
        }
    }
    RodiniaResult result;
    result.verified = nearlyEqual(bytesToFloats(out.value()), host);
    return result;
}

Result<RodiniaResult>
runHotspot(Ctx &ctx, const RodiniaSize &size)
{
    uint64_t dim = std::min<uint64_t>(size.scale, 128);
    std::vector<float> temp = ctx.randomFloats(dim * dim, 20, 90);
    std::vector<float> power = ctx.randomFloats(dim * dim, 0, 2);
    auto va_a = ctx.uploadFloats(temp);
    auto va_b = ctx.uploadFloats(std::vector<float>(dim * dim, 0));
    auto va_p = ctx.uploadFloats(power);
    if (!va_a.isOk() || !va_b.isOk() || !va_p.isOk())
        return Status(ErrorCode::ResourceExhausted, "hotspot alloc");

    uint64_t src = va_a.value(), dst = va_b.value();
    for (uint32_t it = 0; it < size.iterations; ++it) {
        CRONUS_RETURN_IF_ERROR(ctx.b.launchKernel(
            "rodinia_hotspot", {src, dst, va_p.value(), dim, dim},
            dim * dim));
        std::swap(src, dst);
    }
    auto out = ctx.b.copyFromGpu(src, dim * dim * sizeof(float));
    if (!out.isOk())
        return out.status();

    std::vector<float> host = temp, next(dim * dim);
    for (uint32_t it = 0; it < size.iterations; ++it) {
        for (uint64_t r = 0; r < dim; ++r) {
            for (uint64_t c = 0; c < dim; ++c) {
                float center = host[r * dim + c];
                float up = r > 0 ? host[(r - 1) * dim + c] : center;
                float down = r + 1 < dim ? host[(r + 1) * dim + c]
                                         : center;
                float left = c > 0 ? host[r * dim + c - 1] : center;
                float right = c + 1 < dim ? host[r * dim + c + 1]
                                          : center;
                float lap =
                    (up + down + left + right) * 0.25f - center;
                next[r * dim + c] = center + 0.5f * lap +
                                    0.05f * power[r * dim + c];
            }
        }
        host.swap(next);
    }
    RodiniaResult result;
    result.verified = nearlyEqual(bytesToFloats(out.value()), host);
    return result;
}

Result<RodiniaResult>
runPathfinder(Ctx &ctx, const RodiniaSize &size)
{
    uint64_t cols = size.scale;
    uint64_t rows = std::max<uint32_t>(size.iterations, 2);
    std::vector<float> wall = ctx.randomFloats(rows * cols, 0, 10);
    std::vector<float> first(wall.begin(), wall.begin() + cols);

    auto va_wall = ctx.uploadFloats(wall);
    auto va_prev = ctx.uploadFloats(first);
    auto va_cur = ctx.uploadFloats(std::vector<float>(cols, 0));
    if (!va_wall.isOk() || !va_prev.isOk() || !va_cur.isOk())
        return Status(ErrorCode::ResourceExhausted, "pf alloc");

    uint64_t prev = va_prev.value(), cur = va_cur.value();
    for (uint64_t row = 1; row < rows; ++row) {
        CRONUS_RETURN_IF_ERROR(ctx.b.launchKernel(
            "rodinia_pathfinder",
            {prev, cur, va_wall.value(), cols, row}, cols * 3));
        std::swap(prev, cur);
    }
    auto out = ctx.b.copyFromGpu(prev, cols * sizeof(float));
    if (!out.isOk())
        return out.status();

    std::vector<float> hp = first, hc(cols);
    for (uint64_t row = 1; row < rows; ++row) {
        for (uint64_t j = 0; j < cols; ++j) {
            float best = hp[j];
            if (j > 0)
                best = std::min(best, hp[j - 1]);
            if (j + 1 < cols)
                best = std::min(best, hp[j + 1]);
            hc[j] = wall[row * cols + j] + best;
        }
        hp.swap(hc);
    }
    RodiniaResult result;
    result.verified = nearlyEqual(bytesToFloats(out.value()), hp);
    return result;
}

Result<RodiniaResult>
runBfs(Ctx &ctx, const RodiniaSize &size)
{
    uint64_t n = size.scale;
    uint64_t degree = 4;
    std::vector<int32_t> offsets(n + 1, 0);
    std::vector<int32_t> edges;
    for (uint64_t v = 0; v < n; ++v) {
        for (uint64_t d = 0; d < degree; ++d)
            edges.push_back(
                static_cast<int32_t>(ctx.rng.nextBelow(n)));
        offsets[v + 1] = static_cast<int32_t>(edges.size());
    }
    std::vector<int32_t> levels(n, -1);
    levels[0] = 0;

    auto va_off = ctx.uploadInts(offsets);
    auto va_edges = ctx.uploadInts(edges);
    auto va_levels = ctx.uploadInts(levels);
    if (!va_off.isOk() || !va_edges.isOk() || !va_levels.isOk())
        return Status(ErrorCode::ResourceExhausted, "bfs alloc");

    uint32_t max_level = size.iterations;
    for (uint32_t level = 0; level < max_level; ++level) {
        CRONUS_RETURN_IF_ERROR(ctx.b.launchKernel(
            "rodinia_bfs",
            {va_off.value(), va_edges.value(), va_levels.value(), n,
             level},
            edges.size()));
    }
    auto out = ctx.b.copyFromGpu(va_levels.value(),
                                 n * sizeof(int32_t));
    if (!out.isOk())
        return out.status();

    std::vector<int32_t> host(n, -1);
    host[0] = 0;
    for (uint32_t level = 0; level < max_level; ++level) {
        for (uint64_t v = 0; v < n; ++v) {
            if (host[v] != static_cast<int32_t>(level))
                continue;
            for (int32_t e = offsets[v]; e < offsets[v + 1]; ++e) {
                if (host[edges[e]] < 0)
                    host[edges[e]] = level + 1;
            }
        }
    }
    RodiniaResult result;
    result.verified = bytesToInts(out.value()) == host;
    return result;
}

Result<RodiniaResult>
runNw(Ctx &ctx, const RodiniaSize &size)
{
    uint64_t cols = size.scale;
    uint64_t rows = std::max<uint64_t>(size.iterations * 8, 8);
    std::vector<int32_t> seq_a(rows), seq_b(cols);
    for (auto &v : seq_a)
        v = static_cast<int32_t>(ctx.rng.nextBelow(4));
    for (auto &v : seq_b)
        v = static_cast<int32_t>(ctx.rng.nextBelow(4));
    std::vector<int32_t> first(cols);
    for (uint64_t j = 0; j < cols; ++j)
        first[j] = -static_cast<int32_t>(j);

    auto va_prev = ctx.uploadInts(first);
    auto va_cur = ctx.uploadInts(std::vector<int32_t>(cols, 0));
    auto va_a = ctx.uploadInts(seq_a);
    auto va_b = ctx.uploadInts(seq_b);
    if (!va_prev.isOk() || !va_cur.isOk() || !va_a.isOk() ||
        !va_b.isOk())
        return Status(ErrorCode::ResourceExhausted, "nw alloc");

    uint64_t prev = va_prev.value(), cur = va_cur.value();
    for (uint64_t row = 0; row < rows; ++row) {
        CRONUS_RETURN_IF_ERROR(ctx.b.launchKernel(
            "rodinia_nw",
            {prev, cur, va_a.value(), va_b.value(), cols, row},
            cols * 3));
        std::swap(prev, cur);
    }
    auto out = ctx.b.copyFromGpu(prev, cols * sizeof(int32_t));
    if (!out.isOk())
        return out.status();

    std::vector<int32_t> hp = first, hc(cols);
    const int32_t penalty = 1;
    for (uint64_t row = 0; row < rows; ++row) {
        hc[0] = hp[0] - penalty;
        for (uint64_t j = 1; j < cols; ++j) {
            int32_t match = seq_a[row] == seq_b[j] ? 2 : -1;
            int32_t best = hp[j - 1] + match;
            best = std::max(best, hp[j] - penalty);
            best = std::max(best, hc[j - 1] - penalty);
            hc[j] = best;
        }
        hp.swap(hc);
    }
    RodiniaResult result;
    result.verified = bytesToInts(out.value()) == hp;
    return result;
}

Result<RodiniaResult>
runSrad(Ctx &ctx, const RodiniaSize &size)
{
    uint64_t dim = std::min<uint64_t>(size.scale, 128);
    std::vector<float> img = ctx.randomFloats(dim * dim, 0, 255);
    auto va_a = ctx.uploadFloats(img);
    auto va_b = ctx.uploadFloats(std::vector<float>(dim * dim, 0));
    if (!va_a.isOk() || !va_b.isOk())
        return Status(ErrorCode::ResourceExhausted, "srad alloc");

    uint64_t src = va_a.value(), dst = va_b.value();
    for (uint32_t it = 0; it < size.iterations; ++it) {
        CRONUS_RETURN_IF_ERROR(ctx.b.launchKernel(
            "rodinia_srad", {src, dst, dim, dim}, dim * dim));
        std::swap(src, dst);
    }
    auto out = ctx.b.copyFromGpu(src, dim * dim * sizeof(float));
    if (!out.isOk())
        return out.status();

    std::vector<float> host = img, next(dim * dim);
    for (uint32_t it = 0; it < size.iterations; ++it) {
        for (uint64_t r = 0; r < dim; ++r) {
            for (uint64_t c = 0; c < dim; ++c) {
                float center = host[r * dim + c];
                float up = r > 0 ? host[(r - 1) * dim + c] : center;
                float left = c > 0 ? host[r * dim + c - 1] : center;
                float gx = up - center;
                float gy = left - center;
                float coeff = 1.0f / (1.0f + gx * gx + gy * gy);
                next[r * dim + c] =
                    center + 0.25f * coeff * (gx + gy);
            }
        }
        host.swap(next);
    }
    RodiniaResult result;
    result.verified = nearlyEqual(bytesToFloats(out.value()), host);
    return result;
}

Result<RodiniaResult>
runBackprop(Ctx &ctx, const RodiniaSize &size)
{
    uint64_t n_in = size.scale;
    uint64_t n_out = std::max<uint64_t>(size.scale / 4, 4);
    std::vector<float> in = ctx.randomFloats(n_in, -1, 1);
    std::vector<float> w = ctx.randomFloats(n_in * n_out, -0.1f,
                                            0.1f);
    auto va_in = ctx.uploadFloats(in);
    auto va_w = ctx.uploadFloats(w);
    auto va_out = ctx.uploadFloats(std::vector<float>(n_out, 0));
    if (!va_in.isOk() || !va_w.isOk() || !va_out.isOk())
        return Status(ErrorCode::ResourceExhausted, "bp alloc");

    for (uint32_t it = 0; it < size.iterations; ++it) {
        CRONUS_RETURN_IF_ERROR(ctx.b.launchKernel(
            "rodinia_backprop",
            {va_in.value(), va_w.value(), va_out.value(), n_in,
             n_out},
            n_in * n_out));
    }
    auto out = ctx.b.copyFromGpu(va_out.value(),
                                 n_out * sizeof(float));
    if (!out.isOk())
        return out.status();

    std::vector<float> host(n_out);
    for (uint64_t j = 0; j < n_out; ++j) {
        float acc = 0.0f;
        for (uint64_t i = 0; i < n_in; ++i)
            acc += in[i] * w[i * n_out + j];
        host[j] = std::tanh(acc);
    }
    RodiniaResult result;
    result.verified = nearlyEqual(bytesToFloats(out.value()), host);
    return result;
}

Result<RodiniaResult>
runLud(Ctx &ctx, const RodiniaSize &size)
{
    uint64_t n = std::min<uint64_t>(size.scale, 96);
    std::vector<float> a = ctx.randomFloats(n * n, 1.0f, 2.0f);
    for (uint64_t i = 0; i < n; ++i)
        a[i * n + i] += n;
    std::vector<float> host = a;

    auto va = ctx.uploadFloats(a);
    if (!va.isOk())
        return va.status();
    for (uint64_t k = 0; k + 1 < n; ++k) {
        CRONUS_RETURN_IF_ERROR(ctx.b.launchKernel(
            "rodinia_lud", {va.value(), n, k}, (n - k) * (n - k)));
    }
    auto out = ctx.b.copyFromGpu(va.value(), n * n * sizeof(float));
    if (!out.isOk())
        return out.status();

    for (uint64_t k = 0; k + 1 < n; ++k) {
        float pivot = host[k * n + k];
        for (uint64_t i = k + 1; i < n; ++i)
            host[i * n + k] /= pivot;
        for (uint64_t i = k + 1; i < n; ++i) {
            for (uint64_t j = k + 1; j < n; ++j)
                host[i * n + j] -= host[i * n + k] * host[k * n + j];
        }
    }
    RodiniaResult result;
    result.verified = nearlyEqual(bytesToFloats(out.value()), host);
    return result;
}

Result<RodiniaResult>
runKmeans(Ctx &ctx, const RodiniaSize &size)
{
    uint64_t n = size.scale;
    uint64_t k = 8, dim = 4;
    std::vector<float> points = ctx.randomFloats(n * dim, 0, 10);
    std::vector<float> centroids = ctx.randomFloats(k * dim, 0, 10);
    auto va_p = ctx.uploadFloats(points);
    auto va_c = ctx.uploadFloats(centroids);
    auto va_a = ctx.uploadInts(std::vector<int32_t>(n, -1));
    if (!va_p.isOk() || !va_c.isOk() || !va_a.isOk())
        return Status(ErrorCode::ResourceExhausted, "kmeans alloc");

    for (uint32_t it = 0; it < size.iterations; ++it) {
        CRONUS_RETURN_IF_ERROR(ctx.b.launchKernel(
            "rodinia_kmeans",
            {va_p.value(), va_c.value(), va_a.value(), n, k, dim},
            n * k * dim));
    }
    auto out = ctx.b.copyFromGpu(va_a.value(), n * sizeof(int32_t));
    if (!out.isOk())
        return out.status();

    std::vector<int32_t> host(n);
    for (uint64_t p = 0; p < n; ++p) {
        float best = 1e30f;
        int32_t best_c = 0;
        for (uint64_t c = 0; c < k; ++c) {
            float dist = 0.0f;
            for (uint64_t d = 0; d < dim; ++d) {
                float diff =
                    points[p * dim + d] - centroids[c * dim + d];
                dist += diff * diff;
            }
            if (dist < best) {
                best = dist;
                best_c = static_cast<int32_t>(c);
            }
        }
        host[p] = best_c;
    }
    RodiniaResult result;
    result.verified = bytesToInts(out.value()) == host;
    return result;
}

} // namespace

Result<RodiniaResult>
runRodinia(ComputeBackend &backend, const std::string &benchmark,
           const RodiniaSize &size)
{
    registerRodiniaKernels();
    Ctx ctx(backend, 0xc0ffee ^ std::hash<std::string>{}(benchmark));

    /* Warm up the backend (channels/boot), then time the run. */
    auto warm = backend.gpuAlloc(hw::kPageSize);
    if (!warm.isOk())
        return warm.status();
    SimTime start = backend.now();

    Result<RodiniaResult> result =
        Status(ErrorCode::NotFound, "unknown benchmark");
    if (benchmark == "gaussian")
        result = runGaussian(ctx, size);
    else if (benchmark == "hotspot")
        result = runHotspot(ctx, size);
    else if (benchmark == "pathfinder")
        result = runPathfinder(ctx, size);
    else if (benchmark == "bfs")
        result = runBfs(ctx, size);
    else if (benchmark == "nw")
        result = runNw(ctx, size);
    else if (benchmark == "srad")
        result = runSrad(ctx, size);
    else if (benchmark == "backprop")
        result = runBackprop(ctx, size);
    else if (benchmark == "lud")
        result = runLud(ctx, size);
    else if (benchmark == "kmeans")
        result = runKmeans(ctx, size);
    if (!result.isOk())
        return result;

    result.value().benchmark = benchmark;
    result.value().computeTimeNs = backend.now() - start;
    return result;
}

} // namespace cronus::workloads
