/**
 * @file
 * Resumable sRPC channels: supervised reconnect + in-flight replay.
 *
 * An SrpcChannel dies with its callee partition: the next enqueue
 * traps, the channel reports PeerFailed and every queued-but-unacked
 * request is lost. A ResumableChannel wraps the raw channel with the
 * recovery protocol of §IV-D so the *application* survives:
 *
 *  - every call is journaled (fn, args) until a checkpoint
 *    acknowledges it;
 *  - checkpoint() drains the ring, seals the callee's state
 *    (checkpointEnclave) and records the request-index watermark --
 *    journaled calls at or below the watermark are durable and
 *    dropped from the journal;
 *  - on PeerFailed the channel *parks*: it closes the dead ring and
 *    waits for the Supervisor to bring the callee's device back;
 *  - tryResume() re-creates the callee on its recovered (or, after a
 *    quarantine, a different) device, re-runs channel setup --
 *    which repeats local attestation and dCheck against the new
 *    incarnation -- restores the sealed checkpoint into the fresh
 *    enclave, and replays only the journaled calls past the
 *    watermark, in order;
 *  - when the Supervisor gives up (restart budget exhausted) and no
 *    alternative device exists, the channel transitions to GaveUp
 *    and every further call returns ErrorCode::Degraded.
 *
 * The wrapper is deterministic: parking, resume checks and replay
 * are all driven by the caller's pump/call cadence in virtual time.
 */

#ifndef CRONUS_RECOVER_RESUMABLE_CHANNEL_HH
#define CRONUS_RECOVER_RESUMABLE_CHANNEL_HH

#include <functional>

#include "supervisor.hh"

namespace cronus::recover
{

/** Everything needed to (re)create the callee enclave. */
struct CalleeSpec
{
    std::string manifestJson;
    std::string imageName;
    Bytes image;
    /** Pin to a device ("gpu0"); empty lets the dispatcher place
     *  (and re-place after a quarantine). */
    std::string deviceName;
    core::SrpcConfig srpc;
    /** Checkpoint automatically every N successful calls (0: only
     *  explicit checkpoint() calls). */
    uint64_t autoCheckpointEvery = 0;
};

enum class ChannelState
{
    Live,    ///< channel up, calls flow
    Parked,  ///< callee died; waiting for supervised recovery
    GaveUp,  ///< recovery exhausted; calls return Degraded
};

const char *channelStateName(ChannelState state);

class ResumableChannel
{
  public:
    /** Fired after every successful (re)connect, including the first
     *  open() -- lets benches re-attach observers/auditors to the
     *  fresh raw channel. */
    using ConnectHook = std::function<void(core::SrpcChannel &)>;

    ResumableChannel(core::CronusSystem &system, Supervisor &sup,
                     core::AppHandle &caller, CalleeSpec spec);
    ~ResumableChannel();

    /** Create the callee and establish the first channel. */
    Status open();

    /**
     * Journaled call. While Parked, first attempts a resume (and
     * returns PeerFailed if the callee is still down); while GaveUp,
     * returns Degraded.
     */
    Result<Bytes> call(const std::string &fn, const Bytes &args);

    /** Drain the ring (parks on peer failure like call()). */
    Status drain();

    /**
     * Seal the callee's state and advance the replay watermark: the
     * journal is cleared, so only calls made *after* this point are
     * replayed on reconnect.
     */
    Status checkpoint();

    /**
     * One resume attempt. Ok: resumed (Live). PeerFailed: callee
     * still recovering, try again later. Degraded: gave up (budget
     * exhausted and no alternative device). Anything else: hard
     * reconnect error.
     */
    Status tryResume();

    /**
     * Block (in virtual time) until resumed or given up. Returns Ok
     * once Live again, Degraded on GaveUp.
     */
    Status awaitResume();

    ChannelState state() const { return st; }
    core::AppHandle &callee() { return calleeHandle; }
    const std::string &device() const { return currentDevice; }
    core::SrpcChannel *raw() { return chan.get(); }
    uint64_t replayedCalls() const { return replayed; }
    uint64_t reconnects() const { return reconnectCount; }
    void setOnConnect(ConnectHook hook)
    {
        onConnect = std::move(hook);
    }

  private:
    struct JournalEntry
    {
        std::string fn;
        Bytes args;
    };

    void park();
    Status reconnect();

    core::CronusSystem &sys;
    Supervisor &sup;
    core::AppHandle &caller;
    CalleeSpec spec;

    ChannelState st = ChannelState::GaveUp;  ///< until open()
    core::AppHandle calleeHandle;
    std::string currentDevice;
    std::unique_ptr<core::SrpcChannel> chan;
    bool opened = false;

    std::vector<JournalEntry> journal;
    Bytes sealedCheckpoint;
    Bytes checkpointSecret;
    bool haveCheckpoint = false;
    uint64_t callsSinceCkpt = 0;

    uint64_t replayed = 0;
    uint64_t reconnectCount = 0;
    ConnectHook onConnect;
};

} // namespace cronus::recover

#endif // CRONUS_RECOVER_RESUMABLE_CHANNEL_HH
