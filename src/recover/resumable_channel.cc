#include "resumable_channel.hh"

#include "obs/trace.hh"

namespace cronus::recover
{

namespace
{

/** Node-qualified channel track name ("channel node3/gpu0"); the
 *  bare device when the supervisor has no node identity, so
 *  single-node traces are unchanged. */
std::string
channelTrack(const Supervisor &sup, const std::string &device)
{
    const std::string &n = sup.node();
    return n.empty() ? "channel " + device
                     : "channel " + n + "/" + device;
}

} // namespace

const char *
channelStateName(ChannelState state)
{
    switch (state) {
      case ChannelState::Live:   return "live";
      case ChannelState::Parked: return "parked";
      case ChannelState::GaveUp: return "gave-up";
    }
    return "?";
}

ResumableChannel::ResumableChannel(core::CronusSystem &system,
                                   Supervisor &supervisor,
                                   core::AppHandle &caller_handle,
                                   CalleeSpec callee_spec)
    : sys(system), sup(supervisor), caller(caller_handle),
      spec(std::move(callee_spec))
{
}

ResumableChannel::~ResumableChannel() = default;

Status
ResumableChannel::open()
{
    if (opened)
        return Status(ErrorCode::InvalidState,
                      "channel already opened");
    auto fresh = sys.createEnclave(spec.manifestJson, spec.imageName,
                                   spec.image, spec.deviceName);
    if (!fresh.isOk())
        return fresh.status();
    calleeHandle = fresh.value();
    currentDevice = calleeHandle.host->deviceName();
    auto c = sys.connect(caller, calleeHandle, spec.srpc);
    if (!c.isOk()) {
        (void)sys.destroyEnclave(calleeHandle);
        return c.status();
    }
    chan = std::move(c.value());
    CRONUS_RETURN_IF_ERROR(sup.watch(currentDevice));
    opened = true;
    st = ChannelState::Live;
    if (onConnect)
        onConnect(*chan);
    return Status::ok();
}

void
ResumableChannel::park()
{
    if (auto &trc = obs::Tracer::instance(); trc.active()) {
        JsonObject targs;
        targs["device"] = currentDevice;
        trc.instant(trc.track(channelTrack(sup, currentDevice)),
                    "channel.park", "recover", std::move(targs));
    }
    st = ChannelState::Parked;
    if (chan) {
        /* The ring lived in the *caller's* partition; close()
         * releases the grant so nothing dangles while we wait. */
        (void)chan->close();
        chan.reset();
    }
}

Result<Bytes>
ResumableChannel::call(const std::string &fn, const Bytes &args)
{
    if (st == ChannelState::GaveUp)
        return Status(ErrorCode::Degraded,
                      "channel gave up: callee device '" +
                      currentDevice + "' unrecoverable");
    if (st == ChannelState::Parked) {
        Status s = tryResume();
        if (!s.isOk())
            return s;
    }
    journal.push_back(JournalEntry{fn, args});
    auto r = chan->call(fn, args);
    if (!r.isOk()) {
        if (r.status().code() == ErrorCode::PeerFailed ||
            chan->failed()) {
            park();
            return Status(ErrorCode::PeerFailed,
                          "callee failed during '" + fn +
                          "'; channel parked");
        }
        /* An application-level failure: the call completed (badly)
         * and must not be replayed on reconnect. */
        journal.pop_back();
    }
    if (r.isOk() && spec.autoCheckpointEvery != 0 &&
        ++callsSinceCkpt >= spec.autoCheckpointEvery) {
        /* Best effort: a failed auto-checkpoint (e.g. the callee
         * died right after answering) parks the channel and the
         * journal still covers the un-checkpointed calls. */
        (void)checkpoint();
    }
    return r;
}

Status
ResumableChannel::drain()
{
    if (st == ChannelState::GaveUp)
        return Status(ErrorCode::Degraded, "channel gave up");
    if (st == ChannelState::Parked)
        CRONUS_RETURN_IF_ERROR(tryResume());
    Status s = chan->drain();
    if (!s.isOk() &&
        (s.code() == ErrorCode::PeerFailed || chan->failed())) {
        park();
        return Status(ErrorCode::PeerFailed,
                      "callee failed during drain; channel parked");
    }
    return s;
}

Status
ResumableChannel::checkpoint()
{
    if (st != ChannelState::Live)
        return Status(ErrorCode::InvalidState,
                      "checkpoint on a non-live channel");
    Status s = chan->drain();
    if (!s.isOk()) {
        if (s.code() == ErrorCode::PeerFailed || chan->failed())
            park();
        return s;
    }
    auto sealed = sys.checkpointEnclave(calleeHandle);
    if (!sealed.isOk())
        return sealed.status();
    sealedCheckpoint = sealed.value();
    checkpointSecret = calleeHandle.secret;
    haveCheckpoint = true;
    /* Everything journaled so far is durable in the checkpoint:
     * the watermark advances to the current request index and the
     * journal restarts empty. */
    journal.clear();
    callsSinceCkpt = 0;
    return Status::ok();
}

Status
ResumableChannel::reconnect()
{
    auto &trc = obs::Tracer::instance();
    obs::Span reconnect_span;
    if (trc.active()) {
        reconnect_span =
            obs::Span(trc.track(channelTrack(sup, currentDevice)),
                      "channel.reconnect", "recover");
        reconnect_span.arg("device", currentDevice);
        reconnect_span.arg(
            "haveCheckpoint",
            static_cast<int64_t>(haveCheckpoint ? 1 : 0));
    }
    auto fresh = sys.createEnclave(spec.manifestJson, spec.imageName,
                                   spec.image, spec.deviceName);
    if (!fresh.isOk())
        return fresh.status();
    core::AppHandle h = fresh.value();
    if (haveCheckpoint) {
        /* The blob is sealed under the *dead* incarnation's secret;
         * restore re-seals it under the fresh enclave's. */
        Status s = sys.restoreEnclave(h, sealedCheckpoint,
                                      checkpointSecret);
        if (!s.isOk()) {
            (void)sys.destroyEnclave(h);
            return s;
        }
    }
    /* connect() re-runs local attestation + dCheck against the new
     * incarnation -- a recovered mOS must prove itself again. */
    auto c = sys.connect(caller, h, spec.srpc);
    if (!c.isOk()) {
        (void)sys.destroyEnclave(h);
        return c.status();
    }
    calleeHandle = h;
    currentDevice = h.host->deviceName();
    chan = std::move(c.value());
    ++reconnectCount;
    CRONUS_RETURN_IF_ERROR(sup.watch(currentDevice));
    st = ChannelState::Live;
    if (onConnect)
        onConnect(*chan);
    /* Replay the journaled calls past the checkpoint watermark, in
     * order, straight into the raw channel (no re-journaling: they
     * are already journaled). */
    obs::Span replay_span;
    if (trc.active() && !journal.empty()) {
        replay_span =
            obs::Span(trc.track(channelTrack(sup, currentDevice)),
                      "channel.replay", "recover");
        replay_span.arg("calls",
                        static_cast<int64_t>(journal.size()));
    }
    for (const JournalEntry &e : journal) {
        auto r = chan->call(e.fn, e.args);
        if (!r.isOk()) {
            if (r.status().code() == ErrorCode::PeerFailed ||
                chan->failed()) {
                park();
                return Status(ErrorCode::PeerFailed,
                              "callee failed during replay of '" +
                              e.fn + "'");
            }
            return r.status();
        }
        ++replayed;
    }
    return Status::ok();
}

Status
ResumableChannel::tryResume()
{
    if (st == ChannelState::Live)
        return Status::ok();
    if (st == ChannelState::GaveUp)
        return Status(ErrorCode::Degraded, "channel gave up");
    sup.pump();
    if (sup.quarantined(currentDevice)) {
        if (!spec.deviceName.empty()) {
            st = ChannelState::GaveUp;
            return Status(ErrorCode::Degraded,
                          "pinned device '" + currentDevice +
                          "' quarantined; channel gave up");
        }
        /* Unpinned: let the dispatcher re-place the callee on a
         * non-degraded device of the same type. */
        Status s = reconnect();
        if (!s.isOk() && s.code() == ErrorCode::Degraded)
            st = ChannelState::GaveUp;
        return s;
    }
    auto os = sys.mosForDevice(currentDevice);
    if (!os.isOk())
        return os.status();
    auto p = sys.spm().partition(os.value()->partitionId());
    if (!p.isOk())
        return p.status();
    if (p.value()->state != tee::PartitionState::Ready)
        return Status(ErrorCode::PeerFailed,
                      "callee device '" + currentDevice +
                      "' still recovering");
    Status s = reconnect();
    if (!s.isOk()) {
        if (s.code() == ErrorCode::Degraded) {
            st = ChannelState::GaveUp;
            return s;
        }
        /* A double fault can kill the fresh incarnation mid-
         * reconnect; whatever error that surfaced as, if the callee
         * is dead again the channel just stays parked. */
        auto again = sys.spm().partition(os.value()->partitionId());
        if (again.isOk() &&
            again.value()->state != tee::PartitionState::Ready) {
            if (st == ChannelState::Live)
                park();
            st = ChannelState::Parked;
            return Status(ErrorCode::PeerFailed,
                          "callee died again during reconnect");
        }
    }
    return s;
}

Status
ResumableChannel::awaitResume()
{
    while (st == ChannelState::Parked) {
        Status s = tryResume();
        if (s.isOk() || s.code() != ErrorCode::PeerFailed)
            return s;
        Status w = sup.awaitRecovery(currentDevice);
        if (!w.isOk() && w.code() != ErrorCode::Degraded)
            return w;
        /* Degraded: loop back so tryResume decides between
         * re-placement (unpinned) and GaveUp (pinned). */
    }
    if (st == ChannelState::GaveUp)
        return Status(ErrorCode::Degraded, "channel gave up");
    return Status::ok();
}

} // namespace cronus::recover
