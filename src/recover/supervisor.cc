#include "supervisor.hh"

#include "obs/trace.hh"

namespace cronus::recover
{

namespace
{

/** Recovery-stage instant on the watched partition's track. */
void
noteRecovery(const char *name, tee::PartitionId pid,
             const std::string &device, uint32_t restarts)
{
    auto &tr = obs::Tracer::instance();
    if (!tr.active())
        return;
    JsonObject args;
    args["device"] = device;
    args["restarts"] = static_cast<int64_t>(restarts);
    tr.instant(tr.partitionTrack(pid, device), name, "recover",
               std::move(args));
}

/** Retroactive recovery-stage span [start, now] (the stage ran
 *  concurrently with foreground work; its end is only observed at
 *  the deadline inside pump()). */
void
noteRecoveryStage(const char *name, tee::PartitionId pid,
                  const std::string &device, SimTime start,
                  uint32_t restarts)
{
    auto &tr = obs::Tracer::instance();
    if (!tr.active())
        return;
    JsonObject args;
    args["device"] = device;
    args["restarts"] = static_cast<int64_t>(restarts);
    tr.complete(tr.partitionTrack(pid, device), name, "recover",
                start, std::move(args));
}

} // namespace

const char *
deviceHealthName(DeviceHealth health)
{
    switch (health) {
      case DeviceHealth::Healthy:     return "healthy";
      case DeviceHealth::BackingOff:  return "backing-off";
      case DeviceHealth::Scrubbing:   return "scrubbing";
      case DeviceHealth::Quarantined: return "quarantined";
    }
    return "?";
}

Supervisor::Supervisor(core::CronusSystem &system,
                       const SupervisorConfig &config)
    : sys(system), cfg(config)
{
}

Status
Supervisor::watch(const std::string &device, bool hang_detect)
{
    auto it = watches.find(device);
    if (it != watches.end()) {
        it->second.hangDetect |= hang_detect;
        return Status::ok();
    }
    auto os = sys.mosForDevice(device);
    if (!os.isOk())
        return os.status();
    DeviceWatch w;
    w.pid = os.value()->partitionId();
    w.hangDetect = hang_detect;
    auto p = sys.spm().partition(w.pid);
    if (p.isOk())
        w.lastSeenHeartbeat = p.value()->heartbeat;
    w.nextHangPoll =
        sys.platform().clock().now() + cfg.pollPeriodNs;
    watches.emplace(device, w);
    return Status::ok();
}

SimTime
Supervisor::backoffDelay(uint32_t restart_number) const
{
    SimTime delay = cfg.backoffBaseNs;
    if (delay >= cfg.backoffMaxNs || cfg.backoffFactor < 2)
        return delay < cfg.backoffMaxNs ? delay : cfg.backoffMaxNs;
    for (uint32_t i = 1; i < restart_number; ++i) {
        /* Stop before the multiply that would cross the ceiling:
         * checking against max/factor keeps the growth itself free
         * of SimTime overflow at high restart counts. */
        if (delay > cfg.backoffMaxNs / cfg.backoffFactor)
            return cfg.backoffMaxNs;
        delay *= cfg.backoffFactor;
    }
    return delay < cfg.backoffMaxNs ? delay : cfg.backoffMaxNs;
}

void
Supervisor::logEvent(const std::string &device,
                     const std::string &what, uint32_t restarts)
{
    eventLog.push_back(SupervisorEvent{
        sys.platform().clock().now(), device, what, restarts});
}

std::string
Supervisor::qualified(const std::string &device) const
{
    const std::string &n = node();
    return n.empty() ? device : n + "/" + device;
}

void
Supervisor::quarantine(const std::string &device, DeviceWatch &w,
                       const char *event,
                       const std::string &dump_reason)
{
    if (w.health == DeviceHealth::Quarantined)
        return;
    w.health = DeviceHealth::Quarantined;
    sys.dispatcher().setDegraded(device, true);
    logEvent(device, event, w.restarts);
    noteRecovery("recover.quarantine", w.pid, qualified(device),
                 w.restarts);
    obs::Tracer::instance().dumpFlight(dump_reason);
    if (onQuarantine)
        onQuarantine(device);
}

Status
Supervisor::quarantineDevice(const std::string &device,
                             const std::string &why)
{
    auto it = watches.find(device);
    if (it == watches.end())
        return Status(ErrorCode::NotFound,
                      "device '" + device + "' is not watched");
    quarantine(device, it->second, "quarantined",
               "fleet quarantine (" + why + "): " +
                   qualified(device));
    return Status::ok();
}

void
Supervisor::onFailure(const std::string &device, DeviceWatch &w,
                      const char *what)
{
    logEvent(device, what, w.restarts);
    noteRecovery(what[0] == 'h' ? "recover.hang"
                                : "recover.failure",
                 w.pid, qualified(device), w.restarts);
    if (w.restarts >= cfg.restartBudget) {
        quarantine(device, w, "quarantined",
                   "supervisor quarantine: " + qualified(device));
        return;
    }
    ++w.restarts;
    w.health = DeviceHealth::BackingOff;
    w.stageStart = sys.platform().clock().now();
    w.deadline = w.stageStart + backoffDelay(w.restarts);
    logEvent(device, "backoff", w.restarts);
}

void
Supervisor::pump()
{
    SimClock &clock = sys.platform().clock();
    for (auto &[device, w] : watches) {
        auto p = sys.spm().partition(w.pid);
        if (!p.isOk())
            continue;
        switch (w.health) {
          case DeviceHealth::Healthy: {
            if (p.value()->state == tee::PartitionState::Failed) {
                onFailure(device, w, "failure");
                break;
            }
            if (w.hangDetect && clock.now() >= w.nextHangPoll) {
                clock.advance(
                    sys.platform().costs().hangPollNs);
                w.nextHangPoll = clock.now() + cfg.pollPeriodNs;
                if (p.value()->heartbeat == w.lastSeenHeartbeat) {
                    /* No progress since the last poll: hang. Fail
                     * the partition (step 1) and stage recovery
                     * like any other failure. */
                    (void)sys.spm().failPartition(w.pid);
                    onFailure(device, w, "hang");
                } else {
                    w.lastSeenHeartbeat = p.value()->heartbeat;
                }
            }
            break;
          }
          case DeviceHealth::BackingOff: {
            if (clock.now() < w.deadline)
                break;
            noteRecoveryStage("recover.backoff", w.pid,
                              qualified(device), w.stageStart,
                              w.restarts);
            w.health = DeviceHealth::Scrubbing;
            auto est = sys.recoveryEstimate(device);
            w.stageStart = clock.now();
            w.deadline = clock.now() + est.valueOr(0);
            logEvent(device, "scrub", w.restarts);
            break;
          }
          case DeviceHealth::Scrubbing: {
            if (clock.now() < w.deadline)
                break;
            /* The scrub window elapsed concurrently with whatever
             * the rest of the machine was doing; the reboot itself
             * charges nothing extra. */
            Status s = sys.recover(device, /*charge_clock=*/false);
            noteRecoveryStage("recover.scrub", w.pid,
                              qualified(device), w.stageStart,
                              w.restarts);
            if (!s.isOk()) {
                quarantine(device, w, "reboot-failed",
                           "supervisor reboot failed: " +
                               qualified(device));
                break;
            }
            w.health = DeviceHealth::Healthy;
            w.lastSeenHeartbeat = 0;
            w.nextHangPoll = clock.now() + cfg.pollPeriodNs;
            logEvent(device, "recovered", w.restarts);
            noteRecovery("recover.recovered", w.pid,
                         qualified(device), w.restarts);
            break;
          }
          case DeviceHealth::Quarantined:
            break;
        }
    }
}

Status
Supervisor::awaitRecovery(const std::string &device)
{
    auto it = watches.find(device);
    if (it == watches.end())
        return Status(ErrorCode::NotFound,
                      "device '" + device + "' is not watched");
    SimClock &clock = sys.platform().clock();
    for (;;) {
        pump();
        DeviceWatch &w = it->second;
        if (w.health == DeviceHealth::Quarantined)
            return Status(ErrorCode::Degraded,
                          "device '" + device +
                          "' quarantined after " +
                          std::to_string(w.restarts) + " restarts");
        if (w.health == DeviceHealth::Healthy) {
            auto p = sys.spm().partition(w.pid);
            if (p.isOk() &&
                p.value()->state == tee::PartitionState::Ready)
                return Status::ok();
            /* Healthy on the books but Failed on the ground: the
             * next pump starts the backoff stage. */
            continue;
        }
        /* Sleep (in virtual time) until the stage deadline. */
        clock.advanceTo(w.deadline);
    }
}

DeviceHealth
Supervisor::healthOf(const std::string &device) const
{
    auto it = watches.find(device);
    return it == watches.end() ? DeviceHealth::Healthy
                               : it->second.health;
}

uint32_t
Supervisor::restartsOf(const std::string &device) const
{
    auto it = watches.find(device);
    return it == watches.end() ? 0 : it->second.restarts;
}

bool
Supervisor::quarantined(const std::string &device) const
{
    return healthOf(device) == DeviceHealth::Quarantined;
}

JsonValue
Supervisor::report() const
{
    JsonObject devices;
    for (const auto &[device, w] : watches) {
        JsonObject entry;
        entry["health"] = deviceHealthName(w.health);
        entry["restarts"] = static_cast<int64_t>(w.restarts);
        devices[device] = JsonValue(std::move(entry));
    }
    JsonArray events;
    for (const SupervisorEvent &e : eventLog) {
        JsonObject o;
        o["t_ns"] = static_cast<int64_t>(e.t);
        o["device"] = e.device;
        o["what"] = e.what;
        o["restarts"] = static_cast<int64_t>(e.restarts);
        events.push_back(JsonValue(std::move(o)));
    }
    JsonObject report;
    report["restart_budget"] =
        static_cast<int64_t>(cfg.restartBudget);
    report["backoff_base_ns"] =
        static_cast<int64_t>(cfg.backoffBaseNs);
    report["devices"] = JsonValue(std::move(devices));
    report["events"] = JsonValue(std::move(events));
    return JsonValue(std::move(report));
}

} // namespace cronus::recover
