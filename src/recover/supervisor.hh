/**
 * @file
 * Supervised recovery (§IV-D operationalized).
 *
 * The Supervisor moves failure handling out of per-application code
 * and into the platform: it owns the hang-poll / crash-detection
 * loop for the devices it watches (virtual-time cadence), drives
 * staged recovery (fail -> backoff -> scrub -> reboot via the SPM)
 * under a per-partition restart budget with exponential backoff in
 * simulated time, and quarantines crash-looping partitions, marking
 * their device degraded so the dispatcher places new enclaves
 * elsewhere.
 *
 * The state machine per watched device:
 *
 *   Healthy --failure/hang--> BackingOff --deadline--> Scrubbing
 *      ^                                                   |
 *      +------------------- reboot (deadline) -------------+
 *
 *   any failure with restarts >= budget --> Quarantined (terminal;
 *   the device is marked degraded on the dispatcher)
 *
 * All transitions happen inside pump(), which never blocks: it only
 * reacts to the current virtual time, so callers interleave their
 * own work with recovery (a healthy partition's throughput is not
 * perturbed by a failed peer's reboot). awaitRecovery() is the
 * blocking form: it pumps and advances the clock to the next
 * deadline until the device is back up or quarantined.
 */

#ifndef CRONUS_RECOVER_SUPERVISOR_HH
#define CRONUS_RECOVER_SUPERVISOR_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/system.hh"

namespace cronus::recover
{

struct SupervisorConfig
{
    /** Restarts allowed per partition before quarantine. */
    uint32_t restartBudget = 3;
    /** Backoff before the Nth restart: base * factor^(N-1),
     *  clamped to backoffMaxNs. */
    SimTime backoffBaseNs = 20 * kNsPerMs;
    uint32_t backoffFactor = 2;
    /** Ceiling on the exponential backoff: without it, a large
     *  restart budget (or a hand-tuned factor) overflows SimTime
     *  after ~64 doublings and schedules deadlines in the past. */
    SimTime backoffMaxNs = 10 * kNsPerSec;
    /** Hang-poll cadence for watches with hang detection. */
    SimTime pollPeriodNs = 50 * kNsPerMs;
};

enum class DeviceHealth
{
    Healthy,
    BackingOff,   ///< failure observed; waiting out the backoff
    Scrubbing,    ///< step-2 scrub + mOS reload in progress
    Quarantined,  ///< restart budget exhausted (terminal)
};

const char *deviceHealthName(DeviceHealth health);

/** One entry of the deterministic recovery event log. */
struct SupervisorEvent
{
    SimTime t = 0;
    std::string device;
    std::string what;  ///< "failure" | "hang" | "scrub" | ...
    uint32_t restarts = 0;
};

class Supervisor
{
  public:
    explicit Supervisor(core::CronusSystem &system,
                        const SupervisorConfig &config =
                            SupervisorConfig());

    /**
     * Start supervising @p device. With @p hang_detect the
     * supervisor also polls the partition's heartbeat at the
     * configured cadence (only watched devices are polled: an idle
     * caller-side CPU partition that never ticks must not be
     * declared hung). Idempotent.
     */
    Status watch(const std::string &device, bool hang_detect = false);

    /**
     * Non-blocking supervision step: detect failures/hangs, start
     * or finish backoff and scrub stages whose deadline passed.
     * Call it from the application's event loop; time only moves
     * through simulated work, so pumping is deterministic.
     */
    void pump();

    /**
     * Block (in virtual time) until @p device is Ready again or
     * quarantined. Returns Ok after a completed recovery, Degraded
     * when the device is (or becomes) quarantined.
     */
    Status awaitRecovery(const std::string &device);

    DeviceHealth healthOf(const std::string &device) const;
    uint32_t restartsOf(const std::string &device) const;
    bool quarantined(const std::string &device) const;

    /**
     * Force @p device into Quarantined (fleet-initiated: a drain
     * that exhausted its migration budget, a node the cluster gave
     * up on). Idempotent -- if the device is already quarantined,
     * nothing is logged, no flight dump is emitted and the
     * on-quarantine hook does not fire again, so fleet- and
     * node-level quarantine cannot double-fire. NotFound when the
     * device is not watched.
     */
    Status quarantineDevice(const std::string &device,
                            const std::string &why);

    /**
     * Observer fired exactly once per device transition into
     * Quarantined (budget exhaustion, reboot failure, or
     * quarantineDevice). The fleet layer uses it to escalate a
     * node-local quarantine to cluster placement state.
     */
    void setOnQuarantine(
        std::function<void(const std::string &device)> fn)
    {
        onQuarantine = std::move(fn);
    }

    /**
     * Node identity qualifying this supervisor's spans and flight
     * dumps ("node3/gpu0"); taken from the system's configured
     * nodeName. Empty for a standalone system, in which case every
     * name is exactly what it was before fleets existed.
     */
    const std::string &node() const { return sys.nodeName(); }

    /** Deterministic backoff before the Nth restart (1-based). */
    SimTime backoffDelay(uint32_t restart_number) const;

    const SupervisorConfig &config() const { return cfg; }
    const std::vector<SupervisorEvent> &events() const
    {
        return eventLog;
    }

    /** Recovery log + per-device health as JSON (bench reports). */
    JsonValue report() const;

  private:
    struct DeviceWatch
    {
        tee::PartitionId pid = 0;
        DeviceHealth health = DeviceHealth::Healthy;
        SimTime deadline = 0;        ///< backoff/scrub end time
        SimTime stageStart = 0;      ///< current stage start (trace)
        uint32_t restarts = 0;
        bool hangDetect = false;
        uint64_t lastSeenHeartbeat = 0;
        SimTime nextHangPoll = 0;
    };

    void onFailure(const std::string &device, DeviceWatch &w,
                   const char *what);
    void logEvent(const std::string &device, const std::string &what,
                  uint32_t restarts);
    /** Node-qualified device name for spans/dumps. */
    std::string qualified(const std::string &device) const;
    /**
     * The single quarantine transition: marks the watch terminal,
     * degrades the device on the dispatcher, logs @p event, emits
     * the recover.quarantine instant, dumps the flight ring with
     * @p dump_reason and fires the on-quarantine hook -- or does
     * nothing at all if the watch is already Quarantined.
     */
    void quarantine(const std::string &device, DeviceWatch &w,
                    const char *event,
                    const std::string &dump_reason);

    core::CronusSystem &sys;
    SupervisorConfig cfg;
    std::map<std::string, DeviceWatch> watches;
    std::vector<SupervisorEvent> eventLog;
    std::function<void(const std::string &)> onQuarantine;
};

} // namespace cronus::recover

#endif // CRONUS_RECOVER_SUPERVISOR_HH
