#include "bytes.hh"

namespace cronus
{

static const char *kHexDigits = "0123456789abcdef";

std::string
toHex(const uint8_t *data, size_t len)
{
    std::string out;
    out.reserve(len * 2);
    for (size_t i = 0; i < len; ++i) {
        out.push_back(kHexDigits[data[i] >> 4]);
        out.push_back(kHexDigits[data[i] & 0xf]);
    }
    return out;
}

std::string
toHex(const Bytes &data)
{
    return toHex(data.data(), data.size());
}

static int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

Result<Bytes>
fromHex(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        return Status(ErrorCode::InvalidArgument, "odd hex length");
    Bytes out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = hexNibble(hex[i]);
        int lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return Status(ErrorCode::InvalidArgument,
                          "non-hex character");
        out.push_back(static_cast<uint8_t>((hi << 4) | lo));
    }
    return out;
}

Bytes
toBytes(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

bool
constantTimeEqual(const Bytes &a, const Bytes &b)
{
    if (a.size() != b.size())
        return false;
    uint8_t diff = 0;
    for (size_t i = 0; i < a.size(); ++i)
        diff |= a[i] ^ b[i];
    return diff == 0;
}

void
ByteWriter::putU16(uint16_t v)
{
    putU8(v & 0xff);
    putU8(v >> 8);
}

void
ByteWriter::putU32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        putU8((v >> (8 * i)) & 0xff);
}

void
ByteWriter::putU64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        putU8((v >> (8 * i)) & 0xff);
}

void
ByteWriter::putBytes(const Bytes &data)
{
    putU32(static_cast<uint32_t>(data.size()));
    buf.insert(buf.end(), data.begin(), data.end());
}

void
ByteWriter::putString(const std::string &s)
{
    putU32(static_cast<uint32_t>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
}

void
ByteWriter::putRaw(const uint8_t *data, size_t len)
{
    buf.insert(buf.end(), data, data + len);
}

Result<uint8_t>
ByteReader::getU8()
{
    if (!need(1))
        return Status(ErrorCode::InvalidArgument, "truncated u8");
    return buf[pos++];
}

Result<uint16_t>
ByteReader::getU16()
{
    if (!need(2))
        return Status(ErrorCode::InvalidArgument, "truncated u16");
    uint16_t v = buf[pos] | (uint16_t(buf[pos + 1]) << 8);
    pos += 2;
    return v;
}

Result<uint32_t>
ByteReader::getU32()
{
    if (!need(4))
        return Status(ErrorCode::InvalidArgument, "truncated u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(buf[pos + i]) << (8 * i);
    pos += 4;
    return v;
}

Result<uint64_t>
ByteReader::getU64()
{
    if (!need(8))
        return Status(ErrorCode::InvalidArgument, "truncated u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(buf[pos + i]) << (8 * i);
    pos += 8;
    return v;
}

Result<Bytes>
ByteReader::getBytes()
{
    auto len = getU32();
    if (!len.isOk())
        return len.status();
    if (!need(len.value()))
        return Status(ErrorCode::InvalidArgument, "truncated bytes");
    Bytes out(buf.begin() + pos, buf.begin() + pos + len.value());
    pos += len.value();
    return out;
}

Result<std::string>
ByteReader::getString()
{
    auto bytes = getBytes();
    if (!bytes.isOk())
        return bytes.status();
    return std::string(bytes.value().begin(), bytes.value().end());
}

} // namespace cronus
