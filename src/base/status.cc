#include "status.hh"

namespace cronus
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:                 return "Ok";
      case ErrorCode::PermissionDenied:   return "PermissionDenied";
      case ErrorCode::AuthFailed:         return "AuthFailed";
      case ErrorCode::NotFound:           return "NotFound";
      case ErrorCode::InvalidState:       return "InvalidState";
      case ErrorCode::InvalidArgument:    return "InvalidArgument";
      case ErrorCode::ResourceExhausted:  return "ResourceExhausted";
      case ErrorCode::PeerFailed:         return "PeerFailed";
      case ErrorCode::AccessFault:        return "AccessFault";
      case ErrorCode::IntegrityViolation: return "IntegrityViolation";
      case ErrorCode::Unsupported:        return "Unsupported";
      case ErrorCode::Timeout:            return "Timeout";
      case ErrorCode::Degraded:           return "Degraded";
    }
    return "Unknown";
}

std::string
Status::toString() const
{
    std::string out = errorCodeName(errCode);
    if (!errMsg.empty()) {
        out += ": ";
        out += errMsg;
    }
    return out;
}

} // namespace cronus
