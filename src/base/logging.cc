#include "logging.hh"

#include <cstdarg>
#include <vector>

namespace cronus
{

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Warn)
        ++numWarnings;
    if (quietMode || level < minLevel)
        return;
    const char *tag = "info";
    switch (level) {
      case LogLevel::Debug: tag = "debug"; break;
      case LogLevel::Info:  tag = "info";  break;
      case LogLevel::Warn:  tag = "warn";  break;
      case LogLevel::Error: tag = "error"; break;
    }
    std::lock_guard<std::mutex> lock(emitMu);
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

namespace detail
{

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::vector<char> buf(needed + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), needed);
}

} // namespace detail

void
panic(const std::string &msg)
{
    Logger::instance().log(LogLevel::Error, "panic: " + msg);
    throw PanicError(msg);
}

void
fatal(const std::string &msg)
{
    Logger::instance().log(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

void
warn(const std::string &msg)
{
    Logger::instance().log(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    Logger::instance().log(LogLevel::Info, msg);
}

void
trace(const std::string &msg)
{
    Logger::instance().log(LogLevel::Debug, msg);
}

} // namespace cronus
