/**
 * @file
 * Statistics collection: counters, distributions and time series.
 */

#ifndef CRONUS_BASE_STATS_HH
#define CRONUS_BASE_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "json.hh"
#include "sim_clock.hh"

namespace cronus
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    explicit Counter(std::string counter_name = "")
        : statName(std::move(counter_name)) {}

    void inc(uint64_t delta = 1) { total += delta; }
    uint64_t value() const { return total; }
    void reset() { total = 0; }
    const std::string &name() const { return statName; }

  private:
    std::string statName;
    uint64_t total = 0;
};

/** Samples with min/max/mean/percentile queries. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        values.push_back(v);
        sortedValid = false;
    }

    size_t count() const { return values.size(); }
    double min() const;
    double max() const;
    double mean() const;
    double sum() const;
    /** @p p in [0,1]; 0 when no sample was recorded. Sorts lazily
     *  and caches the order, so bursts of queries (p50/p99/p999 from
     *  a metrics snapshot) sort once instead of O(n log n) each. */
    double percentile(double p) const;
    void
    reset()
    {
        values.clear();
        sorted.clear();
        sortedValid = false;
    }

  private:
    std::vector<double> values;
    /** Percentile cache: values sorted, valid while no new sample
     *  has arrived since the last percentile() call. */
    mutable std::vector<double> sorted;
    mutable bool sortedValid = false;
};

/**
 * Time-bucketed event counts for throughput-over-time plots (Fig. 9).
 */
class ThroughputSeries
{
  public:
    explicit ThroughputSeries(SimTime bucket_ns = 100 * kNsPerMs)
        : bucketNs(bucket_ns) {}

    /** Record @p count events at virtual time @p when. */
    void record(SimTime when, uint64_t count = 1);

    /** Events per second for every bucket in [0, end]. */
    std::vector<double> ratesPerSecond(SimTime end) const;

    SimTime bucketSize() const { return bucketNs; }

    /** Raw per-bucket event counts (metrics snapshots). */
    const std::map<uint64_t, uint64_t> &bucketCounts() const
    {
        return buckets;
    }

  private:
    SimTime bucketNs;
    std::map<uint64_t, uint64_t> buckets;
};

/** Registry of named counters owned by one simulated component. */
class StatGroup
{
  public:
    Counter &counter(const std::string &name);
    uint64_t value(const std::string &name) const;
    void reset();

    /** All counters as a JSON object (audit / stats reports). */
    JsonValue toJson() const;

    const std::map<std::string, Counter> &all() const
    {
        return counters;
    }

  private:
    std::map<std::string, Counter> counters;
};

} // namespace cronus

#endif // CRONUS_BASE_STATS_HH
