#include "rng.hh"

#include "logging.hh"

namespace cronus
{

static inline uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

static inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state[1] * 5, 7) * 9;
    uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    CRONUS_ASSERT(bound != 0, "nextBelow(0)");
    /* Rejection sampling to avoid modulo bias. */
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::nextRange(double lo, double hi)
{
    return lo + nextDouble() * (hi - lo);
}

void
Rng::fill(std::vector<uint8_t> &out)
{
    for (size_t i = 0; i < out.size(); i += 8) {
        uint64_t r = next();
        for (size_t j = 0; j < 8 && i + j < out.size(); ++j)
            out[i + j] = (r >> (8 * j)) & 0xff;
    }
}

} // namespace cronus
