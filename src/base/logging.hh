/**
 * @file
 * Logging and error-reporting primitives.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs), fatal() is for unrecoverable user
 * errors, warn()/inform() report conditions without stopping the run.
 */

#ifndef CRONUS_BASE_LOGGING_HH
#define CRONUS_BASE_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cronus
{

/** Severity of a log record. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global logging sink. A single process-wide instance collects all
 * records; tests can silence or capture it.
 */
class Logger
{
  public:
    static Logger &instance();

    /** Minimum level that is actually emitted. */
    void setLevel(LogLevel level) { minLevel.store(level); }
    LogLevel level() const { return minLevel.load(); }

    /** Completely silence the logger (used by benches/tests). */
    void setQuiet(bool quiet) { quietMode.store(quiet); }
    bool quiet() const { return quietMode.load(); }

    /** Emit one record (thread-safe: parallel-engine workers and
     *  fuzz --jobs seeds may log concurrently). */
    void log(LogLevel level, const std::string &msg);

    /** Number of warnings emitted since construction/reset. */
    uint64_t warnCount() const { return numWarnings.load(); }
    void resetCounters() { numWarnings.store(0); }

  private:
    Logger() = default;

    std::atomic<LogLevel> minLevel{LogLevel::Info};
    std::atomic<bool> quietMode{false};
    std::atomic<uint64_t> numWarnings{0};
    std::mutex emitMu;
};

/**
 * Exception thrown by panic()/fatal(). Keeping these as exceptions
 * (rather than abort()) lets the test suite assert that invalid
 * operations are rejected.
 */
class PanicError : public std::runtime_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::runtime_error(msg) {}
};

class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

namespace detail
{

std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Report an internal invariant violation and unwind. */
[[noreturn]] void panic(const std::string &msg);

/** Report an unrecoverable configuration/user error and unwind. */
[[noreturn]] void fatal(const std::string &msg);

/** Report a suspicious-but-survivable condition. */
void warn(const std::string &msg);

/** Report normal operating status. */
void inform(const std::string &msg);

/** Debug-level trace message. */
void trace(const std::string &msg);

/**
 * Assert a simulator invariant; throws PanicError on failure so tests
 * can observe rejected operations.
 */
#define CRONUS_ASSERT(cond, msg)                                        \
    do {                                                                \
        if (!(cond))                                                    \
            ::cronus::panic(std::string("assertion failed: ") + (msg)); \
    } while (0)

} // namespace cronus

#endif // CRONUS_BASE_LOGGING_HH
