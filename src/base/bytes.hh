/**
 * @file
 * Byte-buffer helpers: hex encoding, serialization cursors.
 */

#ifndef CRONUS_BASE_BYTES_HH
#define CRONUS_BASE_BYTES_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "status.hh"

namespace cronus
{

using Bytes = std::vector<uint8_t>;

/** Encode @p data as lowercase hex. */
std::string toHex(const Bytes &data);
std::string toHex(const uint8_t *data, size_t len);

/** Decode hex (must be even length, [0-9a-fA-F]). */
Result<Bytes> fromHex(const std::string &hex);

/** Bytes of an ASCII string. */
Bytes toBytes(const std::string &s);

/** Constant-time comparison (crypto hygiene, even in simulation). */
bool constantTimeEqual(const Bytes &a, const Bytes &b);

/**
 * Append-only serializer with little-endian integer encoding.
 */
class ByteWriter
{
  public:
    void putU8(uint8_t v) { buf.push_back(v); }
    void putU16(uint16_t v);
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    /** Length-prefixed (u32) byte string. */
    void putBytes(const Bytes &data);
    /** Length-prefixed (u32) ASCII string. */
    void putString(const std::string &s);
    /** Raw bytes, no length prefix. */
    void putRaw(const uint8_t *data, size_t len);

    const Bytes &data() const { return buf; }
    Bytes take() { return std::move(buf); }

  private:
    Bytes buf;
};

/**
 * Sequential deserializer mirroring ByteWriter.
 * All getters return an error on truncated input rather than
 * reading out of bounds (untrusted inputs cross this boundary).
 */
class ByteReader
{
  public:
    explicit ByteReader(const Bytes &data) : buf(data) {}

    Result<uint8_t> getU8();
    Result<uint16_t> getU16();
    Result<uint32_t> getU32();
    Result<uint64_t> getU64();
    Result<Bytes> getBytes();
    Result<std::string> getString();

    size_t remaining() const { return buf.size() - pos; }
    bool atEnd() const { return pos == buf.size(); }

  private:
    bool need(size_t n) const { return buf.size() - pos >= n; }

    const Bytes &buf;
    size_t pos = 0;
};

} // namespace cronus

#endif // CRONUS_BASE_BYTES_HH
