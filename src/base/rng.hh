/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * All randomness in the simulation flows through seeded Rng instances
 * so that every test and bench run is exactly reproducible.
 */

#ifndef CRONUS_BASE_RNG_HH
#define CRONUS_BASE_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cronus
{

class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Uniform 64-bit value. */
    uint64_t next();

    /** Uniform in [0, bound). @p bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextRange(double lo, double hi);

    /** Fill @p out with random bytes. */
    void fill(std::vector<uint8_t> &out);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    uint64_t state[4];
};

} // namespace cronus

#endif // CRONUS_BASE_RNG_HH
