/**
 * @file
 * Minimal JSON value model, parser and writer.
 *
 * Used for mEnclave manifests (Fig. 3 of the paper) and for
 * serializing attestation reports in a human-auditable form. The
 * parser is defensive: manifests arrive from the untrusted normal
 * world.
 */

#ifndef CRONUS_BASE_JSON_HH
#define CRONUS_BASE_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "status.hh"

namespace cronus
{

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/** One JSON value (recursive). */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    JsonValue() : type_(Type::Null) {}
    JsonValue(bool b) : type_(Type::Bool), boolVal(b) {}
    JsonValue(int64_t i) : type_(Type::Int), intVal(i) {}
    JsonValue(int i) : type_(Type::Int), intVal(i) {}
    JsonValue(double d) : type_(Type::Double), dblVal(d) {}
    JsonValue(std::string s)
        : type_(Type::String), strVal(std::move(s)) {}
    JsonValue(const char *s) : type_(Type::String), strVal(s) {}
    JsonValue(JsonArray a);
    JsonValue(JsonObject o);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isInt() const { return type_ == Type::Int; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Double;
    }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const;
    int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const;
    const JsonArray &asArray() const;
    const JsonObject &asObject() const;
    JsonArray &asArray();
    JsonObject &asObject();

    /** Object member access; returns Null value if missing. */
    const JsonValue &operator[](const std::string &key) const;

    /** Typed object member lookups with error reporting. */
    Result<std::string> getString(const std::string &key) const;
    Result<int64_t> getInt(const std::string &key) const;
    Result<JsonObject> getObject(const std::string &key) const;
    Result<JsonArray> getArray(const std::string &key) const;
    bool has(const std::string &key) const;

    /** Serialize compactly (stable key order). */
    std::string dump() const;

    bool operator==(const JsonValue &other) const;

  private:
    void dumpTo(std::string &out) const;

    Type type_;
    bool boolVal = false;
    int64_t intVal = 0;
    double dblVal = 0.0;
    std::string strVal;
    std::shared_ptr<JsonArray> arrVal;
    std::shared_ptr<JsonObject> objVal;
};

/** Parse a JSON document; rejects trailing garbage. */
Result<JsonValue> parseJson(const std::string &text);

} // namespace cronus

#endif // CRONUS_BASE_JSON_HH
