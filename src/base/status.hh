/**
 * @file
 * Lightweight Status / Result error-handling types.
 *
 * The simulation distinguishes *security rejections* (an operation a
 * malicious party attempted that the architecture blocks) from
 * programming errors. Security rejections are normal, expected
 * outcomes and are therefore modeled as Status values, never as
 * exceptions.
 */

#ifndef CRONUS_BASE_STATUS_HH
#define CRONUS_BASE_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "logging.hh"

namespace cronus
{

/** Machine-inspectable failure category. */
enum class ErrorCode
{
    Ok = 0,
    /** Caller lacks ownership/permission for the target object. */
    PermissionDenied,
    /** Authentication/attestation/signature verification failed. */
    AuthFailed,
    /** Target object does not exist. */
    NotFound,
    /** Operation conflicts with current state (e.g. already shared). */
    InvalidState,
    /** Malformed input (manifest, device tree, RPC frame...). */
    InvalidArgument,
    /** Out of a bounded resource (memory, eids, ring slots...). */
    ResourceExhausted,
    /** The peer partition/mOS/mEnclave has failed (trap signal). */
    PeerFailed,
    /** Memory access blocked by TZASC/stage-2/SMMU. */
    AccessFault,
    /** Integrity check failed (replay/reorder/tamper detected). */
    IntegrityViolation,
    /** Operation not supported by this device/runtime. */
    Unsupported,
    /** Operation timed out (e.g. hang detection). */
    Timeout,
    /** The target device/partition is quarantined after exhausting
     *  its restart budget; supervised recovery gave up. */
    Degraded,
};

/** Human-readable name of an ErrorCode. */
const char *errorCodeName(ErrorCode code);

/**
 * Result of an operation that can fail without a value.
 */
class Status
{
  public:
    Status() : errCode(ErrorCode::Ok) {}
    Status(ErrorCode code, std::string msg)
        : errCode(code), errMsg(std::move(msg)) {}

    static Status ok() { return Status(); }

    bool isOk() const { return errCode == ErrorCode::Ok; }
    explicit operator bool() const { return isOk(); }

    ErrorCode code() const { return errCode; }
    const std::string &message() const { return errMsg; }

    /** Render "code: message" for logs. */
    std::string toString() const;

    bool operator==(const Status &other) const
    {
        return errCode == other.errCode;
    }

  private:
    ErrorCode errCode;
    std::string errMsg;
};

/** Convenience factories. */
inline Status
makeError(ErrorCode code, const std::string &msg)
{
    return Status(code, msg);
}

/**
 * Result: a value or a Status error.
 */
template <typename T>
class Result
{
  public:
    /* Implicit conversions keep call sites terse. */
    Result(T value) : val(std::move(value)) {}
    Result(Status status) : err(std::move(status))
    {
        CRONUS_ASSERT(!err.isOk(), "Result built from Ok status");
    }
    Result(ErrorCode code, std::string msg)
        : err(code, std::move(msg)) {}

    bool isOk() const { return val.has_value(); }
    explicit operator bool() const { return isOk(); }

    const Status &status() const { return err; }
    ErrorCode code() const
    {
        return isOk() ? ErrorCode::Ok : err.code();
    }

    /** Access the value; panics if the result is an error. */
    T &
    value()
    {
        CRONUS_ASSERT(isOk(), "Result::value() on error: " +
                      err.toString());
        return *val;
    }

    const T &
    value() const
    {
        CRONUS_ASSERT(isOk(), "Result::value() on error: " +
                      err.toString());
        return *val;
    }

    T valueOr(T fallback) const
    {
        return isOk() ? *val : std::move(fallback);
    }

  private:
    std::optional<T> val;
    Status err;
};

/** Propagate an error Status from a callee. */
#define CRONUS_RETURN_IF_ERROR(expr)                                   \
    do {                                                               \
        ::cronus::Status status_ = (expr);                             \
        if (!status_.isOk())                                           \
            return status_;                                            \
    } while (0)

} // namespace cronus

#endif // CRONUS_BASE_STATUS_HH
