/**
 * @file
 * Deterministic virtual clock and platform cost model.
 *
 * Every simulated operation in the platform charges virtual
 * nanoseconds to a SimClock. Figure benches report virtual time, so
 * results are exactly reproducible and independent of host load.
 */

#ifndef CRONUS_BASE_SIM_CLOCK_HH
#define CRONUS_BASE_SIM_CLOCK_HH

#include <cstdint>

namespace cronus
{

/** Virtual time in nanoseconds. */
using SimTime = uint64_t;

constexpr SimTime kNsPerUs = 1000;
constexpr SimTime kNsPerMs = 1000 * kNsPerUs;
constexpr SimTime kNsPerSec = 1000 * kNsPerMs;

/**
 * Monotonic virtual clock shared by one simulated platform.
 */
class SimClock
{
  public:
    SimTime now() const { return current; }

    /** Charge @p ns of virtual time. */
    void advance(SimTime ns) { current += ns; }

    /** Jump to an absolute time (must not move backwards). */
    void advanceTo(SimTime when)
    {
        if (when > current)
            current = when;
    }

    void reset() { current = 0; }

  private:
    SimTime current = 0;
};

/**
 * Calibrated virtual costs of platform operations.
 *
 * The absolute values are loosely calibrated to the paper's platform
 * (QEMU A53 + TrustZone); what matters for reproduction is the
 * *ratios* (e.g. an S-EL2 cross-partition RPC needs four EL switches,
 * encryption costs scale per byte, an mOS restart is ~100s of ms
 * while a machine reboot is minutes).
 */
struct CostModel
{
    /** One exception-level switch (EL0<->EL1 etc.). */
    SimTime elSwitchNs = 800;
    /** Normal-world <-> secure-world switch through EL3. */
    SimTime worldSwitchNs = 2400;
    /** Context switches for one synchronous S-EL2 cross-partition
     *  RPC leg (the paper: at least four switches each way). */
    SimTime sel2RpcSwitchNs = 4 * 2400;
    /** Stage-2 page table entry update (map/unmap one page). */
    SimTime pageTableUpdateNs = 350;
    /** TLB invalidation broadcast. */
    SimTime tlbInvalidateNs = 1200;
    /** SMMU table entry update. */
    SimTime smmuUpdateNs = 500;
    /** Fault trap delivery + handler entry. */
    SimTime trapHandleNs = 3000;
    /** Ring-buffer enqueue/dequeue bookkeeping. */
    SimTime ringBufferOpNs = 120;
    /** Spinlock acquire/release on shared memory. */
    SimTime spinlockOpNs = 60;

    /** CPU memcpy, per byte. */
    double memcpyNsPerByte = 0.12;
    /** PCIe DMA, per byte (~12 GB/s effective). */
    double dmaNsPerByte = 0.08;
    /** AES-128-CTR software encryption, per byte. */
    double aesNsPerByte = 1.6;
    /** HMAC-SHA256, per byte. */
    double hmacNsPerByte = 1.1;
    /** SHA-256 measurement, per byte. */
    double shaNsPerByte = 1.0;
    /** Signature sign/verify (Schnorr, fixed cost). */
    SimTime signNs = 180 * kNsPerUs;
    SimTime verifyNs = 220 * kNsPerUs;
    /** Diffie-Hellman key agreement (per side). */
    SimTime dhNs = 250 * kNsPerUs;

    /** Booting / reloading one mOS image into a partition. */
    SimTime mosBootNs = 180 * kNsPerMs;
    /** Clearing device + shared memory state, per MiB. */
    SimTime deviceClearNsPerMiB = 2 * kNsPerMs;
    /** Whole-machine cold reboot (the Fig. 9 comparator). */
    SimTime machineRebootNs = 120 * kNsPerSec;
    /** SPM hang-detection polling period. */
    SimTime hangPollNs = 10 * kNsPerMs;

    /** Cost of a synchronous mECall dispatch through the normal
     *  world (enclave dispatcher hop). */
    SimTime dispatchNs = 5 * kNsPerUs;

    /** CPU-side driver cost of submitting one GPU kernel launch
     *  (command build + ioctl + doorbell; gdev-class driver). */
    SimTime gpuSubmitNs = 5 * kNsPerUs;
    /** CPU-side driver cost of issuing one GPU copy command. */
    SimTime gpuCopyCmdNs = 2500;
    /** CPU-side driver cost of submitting one NPU program. */
    SimTime npuSubmitNs = 3 * kNsPerUs;
};

} // namespace cronus

#endif // CRONUS_BASE_SIM_CLOCK_HH
