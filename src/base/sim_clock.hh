/**
 * @file
 * Deterministic virtual clock and platform cost model.
 *
 * Every simulated operation in the platform charges virtual
 * nanoseconds to a SimClock. Figure benches report virtual time, so
 * results are exactly reproducible and independent of host load.
 *
 * Parallel execution (DESIGN.md section 13): the conservative
 * parallel engine runs events on worker threads. While a worker
 * executes an event it installs a thread-local *frame* on the clock;
 * every advance()/advanceTo() inside the frame accumulates into the
 * frame's local offset instead of the shared absolute time, and
 * now() reads base+local. The engine later *commits* the captured
 * duration on the owning thread, in issue order, so the absolute
 * timeline is bit-for-bit the serial one. Code below the seam is
 * untouched: it keeps calling now()/advance() exactly as before.
 *
 * Hardening: advance() aborts on uint64 overflow, and commitBarrier()
 * aborts on any attempt to move a committed virtual-time barrier
 * backwards. Both checks are always-on (they cost one predictable
 * compare each) because the parallel engine relies on them in every
 * build type, including NDEBUG ones.
 */

#ifndef CRONUS_BASE_SIM_CLOCK_HH
#define CRONUS_BASE_SIM_CLOCK_HH

#include <cstdint>

namespace cronus
{

/** Virtual time in nanoseconds. */
using SimTime = uint64_t;

constexpr SimTime kNsPerUs = 1000;
constexpr SimTime kNsPerMs = 1000 * kNsPerUs;
constexpr SimTime kNsPerSec = 1000 * kNsPerMs;

namespace detail
{
/** Abort with a clock-invariant diagnostic (see sim_clock.cc). */
[[noreturn]] void clockInvariantFailure(const char *what,
                                        unsigned long long a,
                                        unsigned long long b);
} // namespace detail

/**
 * Monotonic virtual clock shared by one simulated platform.
 */
class SimClock
{
  public:
    /**
     * One worker-side execution frame. While installed (via
     * FrameScope) on the executing thread, charges against @c clock
     * are captured as a relative duration in @c local instead of
     * moving the shared absolute time.
     */
    struct Frame
    {
        SimClock *clock = nullptr;
        SimTime base = 0;   ///< absolute batch-start time
        SimTime local = 0;  ///< virtual ns charged inside the frame
        Frame *prev = nullptr;
    };

    SimTime now() const
    {
        const Frame *f = tlsFrame;
        if (f != nullptr && f->clock == this)
            return f->base + f->local;
        return current;
    }

    /** Charge @p ns of virtual time. Aborts on uint64 overflow. */
    void advance(SimTime ns)
    {
        Frame *f = tlsFrame;
        if (f != nullptr && f->clock == this) {
            const SimTime abs = f->base + f->local;
            if (abs + ns < abs)
                detail::clockInvariantFailure(
                    "SimClock::advance overflow (framed)", abs, ns);
            f->local += ns;
            return;
        }
        if (current + ns < current)
            detail::clockInvariantFailure(
                "SimClock::advance overflow", current, ns);
        current += ns;
    }

    /** Jump to an absolute time (must not move backwards). */
    void advanceTo(SimTime when)
    {
        Frame *f = tlsFrame;
        if (f != nullptr && f->clock == this) {
            if (when > f->base + f->local)
                f->local = when - f->base;
            return;
        }
        if (when > current)
            current = when;
    }

    void reset()
    {
        current = 0;
        barrierNs = 0;
    }

    /* --- virtual-time barriers (parallel engine) --- */

    /**
     * Record that every domain has synchronized up to @p when: no
     * event before the barrier can ever execute again. Aborts when
     * asked to move an already-committed barrier backwards.
     */
    void commitBarrier(SimTime when)
    {
        if (when < barrierNs)
            detail::clockInvariantFailure(
                "SimClock::commitBarrier moving backwards", when,
                barrierNs);
        barrierNs = when;
    }

    /** The latest committed virtual-time barrier. */
    SimTime barrier() const { return barrierNs; }

    /**
     * RAII frame installation for the executing thread. The engine
     * opens one scope per event; nested scopes (an event that flushes
     * a nested engine) stack. Opening a frame based before the
     * committed barrier is an engine bug and aborts.
     */
    class FrameScope
    {
      public:
        FrameScope(SimClock &clk, SimTime base)
        {
            if (base < clk.barrierNs)
                detail::clockInvariantFailure(
                    "SimClock frame based before committed barrier",
                    base, clk.barrierNs);
            frame_.clock = &clk;
            frame_.base = base;
            frame_.prev = tlsFrame;
            tlsFrame = &frame_;
        }
        ~FrameScope() { tlsFrame = frame_.prev; }
        FrameScope(const FrameScope &) = delete;
        FrameScope &operator=(const FrameScope &) = delete;

        /** Virtual ns charged so far inside this frame. */
        SimTime localNs() const { return frame_.local; }

      private:
        Frame frame_;
    };

    /** The innermost frame installed on this thread (nullptr when
     *  the thread is executing serially). */
    static const Frame *activeFrame() { return tlsFrame; }

  private:
    SimTime current = 0;
    SimTime barrierNs = 0;

    static thread_local Frame *tlsFrame;
};

/**
 * Calibrated virtual costs of platform operations.
 *
 * The absolute values are loosely calibrated to the paper's platform
 * (QEMU A53 + TrustZone); what matters for reproduction is the
 * *ratios* (e.g. an S-EL2 cross-partition RPC needs four EL switches,
 * encryption costs scale per byte, an mOS restart is ~100s of ms
 * while a machine reboot is minutes).
 */
struct CostModel
{
    /** One exception-level switch (EL0<->EL1 etc.). */
    SimTime elSwitchNs = 800;
    /** Normal-world <-> secure-world switch through EL3. */
    SimTime worldSwitchNs = 2400;
    /** Context switches for one synchronous S-EL2 cross-partition
     *  RPC leg (the paper: at least four switches each way). */
    SimTime sel2RpcSwitchNs = 4 * 2400;
    /** Stage-2 page table entry update (map/unmap one page). */
    SimTime pageTableUpdateNs = 350;
    /** TLB invalidation broadcast. */
    SimTime tlbInvalidateNs = 1200;
    /** SMMU table entry update. */
    SimTime smmuUpdateNs = 500;
    /** Fault trap delivery + handler entry. */
    SimTime trapHandleNs = 3000;
    /** Ring-buffer enqueue/dequeue bookkeeping. */
    SimTime ringBufferOpNs = 120;
    /** Spinlock acquire/release on shared memory. */
    SimTime spinlockOpNs = 60;

    /** CPU memcpy, per byte. */
    double memcpyNsPerByte = 0.12;
    /** PCIe DMA, per byte (~12 GB/s effective). */
    double dmaNsPerByte = 0.08;
    /** AES-128-CTR software encryption, per byte. */
    double aesNsPerByte = 1.6;
    /** HMAC-SHA256, per byte. */
    double hmacNsPerByte = 1.1;
    /** SHA-256 measurement, per byte. */
    double shaNsPerByte = 1.0;
    /** Signature sign/verify (Schnorr, fixed cost). */
    SimTime signNs = 180 * kNsPerUs;
    SimTime verifyNs = 220 * kNsPerUs;
    /** Diffie-Hellman key agreement (per side). */
    SimTime dhNs = 250 * kNsPerUs;

    /** Booting / reloading one mOS image into a partition. */
    SimTime mosBootNs = 180 * kNsPerMs;
    /** Clearing device + shared memory state, per MiB. */
    SimTime deviceClearNsPerMiB = 2 * kNsPerMs;
    /** Whole-machine cold reboot (the Fig. 9 comparator). */
    SimTime machineRebootNs = 120 * kNsPerSec;
    /** SPM hang-detection polling period. */
    SimTime hangPollNs = 10 * kNsPerMs;

    /** Cost of a synchronous mECall dispatch through the normal
     *  world (enclave dispatcher hop). */
    SimTime dispatchNs = 5 * kNsPerUs;

    /** CPU-side driver cost of submitting one GPU kernel launch
     *  (command build + ioctl + doorbell; gdev-class driver). */
    SimTime gpuSubmitNs = 5 * kNsPerUs;
    /** CPU-side driver cost of issuing one GPU copy command. */
    SimTime gpuCopyCmdNs = 2500;
    /** CPU-side driver cost of submitting one NPU program. */
    SimTime npuSubmitNs = 3 * kNsPerUs;
};

} // namespace cronus

#endif // CRONUS_BASE_SIM_CLOCK_HH
