#include "parallel.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>

namespace cronus
{

unsigned
ParallelExecutor::workersFromEnv()
{
    const char *v = std::getenv("CRONUS_PARALLEL");
    if (v == nullptr || v[0] == '\0')
        return 0;
    unsigned long n = std::strtoul(v, nullptr, 10);
    if (n <= 1)
        return 0;
    return static_cast<unsigned>(std::min(n, 64ul));
}

ParallelExecutor::ParallelExecutor(SimClock &clk, unsigned workers)
    : clock(clk), workerCount(workers <= 1 ? 0 : workers)
{
    if (workerCount == 0)
        return;
    pool.reserve(workerCount);
    for (unsigned i = 0; i < workerCount; ++i)
        pool.emplace_back([this] { workerLoop(); });
}

ParallelExecutor::~ParallelExecutor()
{
    if (pool.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(poolMu);
        shuttingDown = true;
    }
    workCv.notify_all();
    for (std::thread &t : pool)
        t.join();
}

void
ParallelExecutor::submit(DomainId domain, std::function<void()> body,
                         std::function<bool()> commit,
                         std::function<void()> discard)
{
    if (workerCount == 0) {
        /* Serial path: execute inline, exactly like the pre-engine
         * code -- no frame, charges land on the shared clock as
         * they happen, commit right after. */
        if (body)
            body();
        if (commit)
            (void)commit();
        ++committedEvents;
        return;
    }
    Event ev;
    ev.domain = domain;
    ev.body = std::move(body);
    ev.commit = std::move(commit);
    ev.discard = std::move(discard);
    pending.push_back(std::move(ev));
}

void
ParallelExecutor::runDomain(const std::vector<size_t> &indices,
                            SimTime batch_base)
{
    for (size_t idx : indices) {
        Event &ev = pending[idx];
        if (hooks.beginEvent)
            ev.hookState = hooks.beginEvent();
        {
            SimClock::FrameScope frame(clock, batch_base);
            if (ev.body) {
                try {
                    ev.body();
                } catch (...) {
                    /* Rethrown at this event's commit point so the
                     * failure surfaces in deterministic issue order,
                     * never through the pool loop. */
                    ev.error = std::current_exception();
                }
            }
            ev.durNs = frame.localNs();
        }
        if (hooks.endEvent)
            hooks.endEvent(ev.hookState);
    }
}

void
ParallelExecutor::workerLoop()
{
    uint64_t seenGeneration = 0;
    for (;;) {
        std::unique_lock<std::mutex> lock(poolMu);
        workCv.wait(lock, [&] {
            return shuttingDown || generation != seenGeneration;
        });
        if (shuttingDown)
            return;
        seenGeneration = generation;
        for (;;) {
            if (nextDomain >= domainLists.size())
                break;
            const size_t mine = nextDomain++;
            lock.unlock();
            runDomain(domainLists[mine], batchBase);
            lock.lock();
            if (--domainsLeft == 0)
                doneCv.notify_all();
        }
    }
}

uint64_t
ParallelExecutor::flush()
{
    if (workerCount == 0 || pending.empty())
        return 0;

    /* Partition the batch into per-domain FIFO lists (deterministic:
     * issue order within a domain, domain id across). */
    std::map<DomainId, std::vector<size_t>> byDomain;
    for (size_t i = 0; i < pending.size(); ++i)
        byDomain[pending[i].domain].push_back(i);

    const SimTime base = clock.now();
    {
        std::unique_lock<std::mutex> lock(poolMu);
        domainLists.clear();
        for (auto &[domain, indices] : byDomain) {
            (void)domain;
            domainLists.push_back(std::move(indices));
        }
        batchBase = base;
        nextDomain = 0;
        domainsLeft = domainLists.size();
        ++generation;
        workCv.notify_all();
        doneCv.wait(lock, [&] { return domainsLeft == 0; });
    }

    /* Serialized commit: replay the receipts in issue order. The
     * absolute start time of event k is therefore exactly what the
     * serial engine would have produced. */
    uint64_t committed = 0;
    bool aborting = false;
    std::exception_ptr firstError;
    for (Event &ev : pending) {
        if (aborting) {
            if (hooks.discardEvent)
                hooks.discardEvent(ev.hookState);
            if (ev.discard)
                ev.discard();
            ++discardedEvents;
            continue;
        }
        const SimTime trueStart = clock.now();
        clock.advance(ev.durNs);
        maxLocalAdvance = std::max(maxLocalAdvance, ev.durNs);
        if (hooks.commitEvent)
            hooks.commitEvent(ev.hookState, trueStart, base);
        if (ev.error) {
            firstError = ev.error;
            aborting = true;
            ++committed;
            continue;
        }
        bool keepGoing = true;
        if (ev.commit)
            keepGoing = ev.commit();
        ++committed;
        if (!keepGoing)
            aborting = true;
    }
    pending.clear();
    committedEvents += committed;
    ++batchCount;
    clock.commitBarrier(clock.now());
    if (firstError)
        std::rethrow_exception(firstError);
    return committed;
}

void
runTasks(unsigned workers,
         const std::vector<std::function<void()>> &tasks)
{
    if (workers <= 1 || tasks.size() <= 1) {
        for (const auto &t : tasks)
            t();
        return;
    }
    std::atomic<size_t> next{0};
    auto drain = [&] {
        for (;;) {
            const size_t i = next.fetch_add(1);
            if (i >= tasks.size())
                return;
            tasks[i]();
        }
    };
    const unsigned helpers =
        static_cast<unsigned>(std::min<size_t>(workers, tasks.size())) -
        1;
    std::vector<std::thread> pool;
    pool.reserve(helpers);
    for (unsigned i = 0; i < helpers; ++i)
        pool.emplace_back(drain);
    drain();
    for (std::thread &t : pool)
        t.join();
}

} // namespace cronus
