/**
 * @file
 * Conservative parallel discrete-event engine (DESIGN.md section 13).
 *
 * The simulation substrate is a *charge* model: code calls
 * SimClock::advance() with the virtual cost of whatever it just did,
 * on one clock shared by the whole machine (or fleet). The engine
 * parallelizes that model without changing a single charge site:
 *
 *  - The frontend partitions work into *events*, each pinned to a
 *    *domain* (one per cluster node, plus one for the frontend
 *    itself). Events on one domain execute in FIFO issue order;
 *    events on different domains may run concurrently, because the
 *    frontend only batches events that exchange no cross-domain
 *    messages before the next barrier -- the conservative rule: a
 *    domain may run ahead of the committed barrier only up to the
 *    earliest virtual time a cross-domain message could reach it
 *    (barrier + lookahead, where lookahead is derived from the cost
 *    model's minimum cross-domain latency), and the frontend issues
 *    no cross-domain sends inside a batch at all, so the bound is
 *    trivially respected.
 *
 *  - Each event body runs under a SimClock frame (sim_clock.hh): its
 *    charges accumulate into a private duration receipt instead of
 *    the shared clock, so workers never contend on -- or observe --
 *    the absolute timeline.
 *
 *  - flush() is the virtual-time barrier. After every body has run,
 *    the flush thread *commits* the receipts strictly in issue
 *    order: for each event it reads the true start time, advances
 *    the shared clock by the receipt, and runs the event's commit
 *    callback. Because within-batch durations depend only on
 *    domain-local state (FIFO-ordered exactly as the serial engine
 *    would order them), the committed timeline is bit-for-bit the
 *    serial one -- the byte-identical-output discipline that gates
 *    this engine in CI.
 *
 * A commit callback may return false to *abort* the rest of the
 * batch: later events are discarded (no clock advance, no hook
 * commit; their discard callbacks run instead, in issue order) so
 * the caller can redo them serially at the true clock. The cluster
 * uses this to keep even mid-batch recovery failures
 * serial-equivalent.
 *
 * Worker count comes from CRONUS_PARALLEL (0 or 1 = serial). In
 * serial mode submit()/flush() degrade to immediate in-order inline
 * execution with no frames and no threads -- bit-for-bit the seed
 * code path.
 *
 * Why conservative, not optimistic: optimistic PDES (Time Warp)
 * needs rollback of arbitrary model state, and this substrate's
 * state (crypto sessions, SPM page tables, host-side key material)
 * is not checkpointable at event granularity. Conservative barriers
 * cost a join per batch but make byte-identity provable.
 */

#ifndef CRONUS_BASE_PARALLEL_HH
#define CRONUS_BASE_PARALLEL_HH

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim_clock.hh"

namespace cronus
{

class ParallelExecutor
{
  public:
    using DomainId = uint32_t;

    /**
     * Per-event observer hooks, installed once by the owner. The
     * engine itself is below the observability layer; the cluster
     * wires these to the tracer's deferred-capture API (and the
     * interconnect's deferred traffic counters) so per-domain event
     * streams merge deterministically at commit time.
     */
    struct Hooks
    {
        /** Worker thread, before the event body. Returns opaque
         *  per-event state threaded through the later hooks. */
        std::function<void *()> beginEvent;
        /** Worker thread, right after the event body. */
        std::function<void(void *)> endEvent;
        /** Flush thread, in issue order, after the receipt was
         *  committed: @p true_start is the event's absolute start,
         *  @p frame_base the base its frame ran against. */
        std::function<void(void *, SimTime true_start,
                           SimTime frame_base)>
            commitEvent;
        /** Flush thread, for events dropped by a batch abort. */
        std::function<void(void *)> discardEvent;
    };

    /** @p workers <= 1 selects the serial inline path. */
    ParallelExecutor(SimClock &clock, unsigned workers);
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** CRONUS_PARALLEL: unset/0/1 = serial, N = N workers (capped
     *  at 64). */
    static unsigned workersFromEnv();

    unsigned workers() const { return workerCount; }
    bool parallel() const { return workerCount > 1; }

    void setHooks(Hooks h) { hooks = std::move(h); }

    /**
     * Conservative lookahead: the least virtual time that separates
     * two domains (minimum cross-domain message latency). Purely
     * declarative for auditing -- batch construction already
     * guarantees no intra-batch cross-domain traffic.
     */
    void setLookaheadNs(SimTime ns) { lookahead = ns; }
    SimTime lookaheadNs() const { return lookahead; }

    /**
     * Queue one event on @p domain. Serial mode: body, hooks-free,
     * then commit run immediately (discard is never called).
     * Parallel mode: body runs on a worker under a clock frame;
     * commit runs at the next flush() on the flushing thread, in
     * global issue order.
     */
    void submit(DomainId domain, std::function<void()> body,
                std::function<bool()> commit = {},
                std::function<void()> discard = {});

    /**
     * Virtual-time barrier: run every queued body, then commit the
     * receipts in issue order (see the abort protocol above).
     * Returns the number of events committed this batch.
     */
    uint64_t flush();

    bool idle() const { return pending.empty(); }

    /* --- engine counters (events/sec reporting) --- */

    uint64_t eventsCommitted() const { return committedEvents; }
    uint64_t eventsDiscarded() const { return discardedEvents; }
    uint64_t batches() const { return batchCount; }
    /** Deepest any single event ran ahead of its batch barrier. */
    SimTime maxLocalAdvanceNs() const { return maxLocalAdvance; }

  private:
    struct Event
    {
        DomainId domain = 0;
        std::function<void()> body;
        std::function<bool()> commit;
        std::function<void()> discard;
        SimTime durNs = 0;
        void *hookState = nullptr;
        std::exception_ptr error;
    };

    void workerLoop();
    void runDomain(const std::vector<size_t> &indices,
                   SimTime batch_base);

    SimClock &clock;
    unsigned workerCount = 0;
    SimTime lookahead = 0;
    Hooks hooks;

    std::vector<Event> pending;
    uint64_t committedEvents = 0;
    uint64_t discardedEvents = 0;
    uint64_t batchCount = 0;
    SimTime maxLocalAdvance = 0;

    /* Worker pool (parallel mode only). */
    std::vector<std::thread> pool;
    std::mutex poolMu;
    std::condition_variable workCv;
    std::condition_variable doneCv;
    bool shuttingDown = false;
    uint64_t generation = 0;
    SimTime batchBase = 0;
    std::vector<std::vector<size_t>> domainLists;
    size_t nextDomain = 0;
    size_t domainsLeft = 0;
};

/**
 * Run @p tasks to completion on @p workers threads (the caller's
 * thread participates; workers <= 1 runs inline, in order). Used by
 * the fuzz runner's --jobs mode for independent whole-seed tasks --
 * unlike ParallelExecutor there is no virtual clock involved; each
 * task owns its own simulated universe.
 */
void runTasks(unsigned workers,
              const std::vector<std::function<void()>> &tasks);

} // namespace cronus

#endif // CRONUS_BASE_PARALLEL_HH
