#include "stats.hh"

#include <cmath>
#include <numeric>

#include "logging.hh"

namespace cronus
{

double
Distribution::min() const
{
    CRONUS_ASSERT(!values.empty(), "Distribution::min on empty");
    return *std::min_element(values.begin(), values.end());
}

double
Distribution::max() const
{
    CRONUS_ASSERT(!values.empty(), "Distribution::max on empty");
    return *std::max_element(values.begin(), values.end());
}

double
Distribution::sum() const
{
    return std::accumulate(values.begin(), values.end(), 0.0);
}

double
Distribution::mean() const
{
    CRONUS_ASSERT(!values.empty(), "Distribution::mean on empty");
    return sum() / values.size();
}

double
Distribution::percentile(double p) const
{
    CRONUS_ASSERT(p >= 0.0 && p <= 1.0, "percentile out of range");
    /* An empty distribution has no order statistics; define every
     * percentile as 0 so snapshot paths (p50/p99/p999 on instruments
     * that never sampled) need no caller-side guard. */
    if (values.empty())
        return 0.0;
    if (!sortedValid) {
        sorted = values;
        std::sort(sorted.begin(), sorted.end());
        sortedValid = true;
    }
    double idx = p * (sorted.size() - 1);
    size_t lo = static_cast<size_t>(std::floor(idx));
    size_t hi = static_cast<size_t>(std::ceil(idx));
    double frac = idx - lo;
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void
ThroughputSeries::record(SimTime when, uint64_t count)
{
    buckets[when / bucketNs] += count;
}

std::vector<double>
ThroughputSeries::ratesPerSecond(SimTime end) const
{
    size_t n = static_cast<size_t>(end / bucketNs) + 1;
    std::vector<double> rates(n, 0.0);
    double scale = static_cast<double>(kNsPerSec) /
                   static_cast<double>(bucketNs);
    for (const auto &[bucket, count] : buckets) {
        if (bucket < n)
            rates[bucket] = count * scale;
    }
    return rates;
}

Counter &
StatGroup::counter(const std::string &name)
{
    auto it = counters.find(name);
    if (it == counters.end())
        it = counters.emplace(name, Counter(name)).first;
    return it->second;
}

uint64_t
StatGroup::value(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

void
StatGroup::reset()
{
    for (auto &[name, counter] : counters)
        counter.reset();
}

JsonValue
StatGroup::toJson() const
{
    JsonObject out;
    for (const auto &[name, counter] : counters)
        out[name] = static_cast<int64_t>(counter.value());
    return JsonValue(std::move(out));
}

} // namespace cronus
