#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace cronus
{

JsonValue::JsonValue(JsonArray a)
    : type_(Type::Array), arrVal(std::make_shared<JsonArray>(std::move(a)))
{
}

JsonValue::JsonValue(JsonObject o)
    : type_(Type::Object),
      objVal(std::make_shared<JsonObject>(std::move(o)))
{
}

bool
JsonValue::asBool() const
{
    CRONUS_ASSERT(isBool(), "JsonValue::asBool on non-bool");
    return boolVal;
}

int64_t
JsonValue::asInt() const
{
    CRONUS_ASSERT(isNumber(), "JsonValue::asInt on non-number");
    return type_ == Type::Int ? intVal
                              : static_cast<int64_t>(dblVal);
}

double
JsonValue::asDouble() const
{
    CRONUS_ASSERT(isNumber(), "JsonValue::asDouble on non-number");
    return type_ == Type::Double ? dblVal
                                 : static_cast<double>(intVal);
}

const std::string &
JsonValue::asString() const
{
    CRONUS_ASSERT(isString(), "JsonValue::asString on non-string");
    return strVal;
}

const JsonArray &
JsonValue::asArray() const
{
    CRONUS_ASSERT(isArray(), "JsonValue::asArray on non-array");
    return *arrVal;
}

const JsonObject &
JsonValue::asObject() const
{
    CRONUS_ASSERT(isObject(), "JsonValue::asObject on non-object");
    return *objVal;
}

JsonArray &
JsonValue::asArray()
{
    CRONUS_ASSERT(isArray(), "JsonValue::asArray on non-array");
    return *arrVal;
}

JsonObject &
JsonValue::asObject()
{
    CRONUS_ASSERT(isObject(), "JsonValue::asObject on non-object");
    return *objVal;
}

const JsonValue &
JsonValue::operator[](const std::string &key) const
{
    static const JsonValue null_value;
    if (!isObject())
        return null_value;
    auto it = objVal->find(key);
    return it == objVal->end() ? null_value : it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return isObject() && objVal->count(key) > 0;
}

Result<std::string>
JsonValue::getString(const std::string &key) const
{
    const JsonValue &v = (*this)[key];
    if (!v.isString())
        return Status(ErrorCode::InvalidArgument,
                      "missing/non-string field '" + key + "'");
    return v.asString();
}

Result<int64_t>
JsonValue::getInt(const std::string &key) const
{
    const JsonValue &v = (*this)[key];
    if (!v.isNumber())
        return Status(ErrorCode::InvalidArgument,
                      "missing/non-numeric field '" + key + "'");
    return v.asInt();
}

Result<JsonObject>
JsonValue::getObject(const std::string &key) const
{
    const JsonValue &v = (*this)[key];
    if (!v.isObject())
        return Status(ErrorCode::InvalidArgument,
                      "missing/non-object field '" + key + "'");
    return v.asObject();
}

Result<JsonArray>
JsonValue::getArray(const std::string &key) const
{
    const JsonValue &v = (*this)[key];
    if (!v.isArray())
        return Status(ErrorCode::InvalidArgument,
                      "missing/non-array field '" + key + "'");
    return v.asArray();
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null:   return true;
      case Type::Bool:   return boolVal == other.boolVal;
      case Type::Int:    return intVal == other.intVal;
      case Type::Double: return dblVal == other.dblVal;
      case Type::String: return strVal == other.strVal;
      case Type::Array:  return *arrVal == *other.arrVal;
      case Type::Object: return *objVal == *other.objVal;
    }
    return false;
}

static void
escapeString(const std::string &s, std::string &out)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
JsonValue::dumpTo(std::string &out) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Type::Int:
        out += std::to_string(intVal);
        break;
      case Type::Double: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", dblVal);
        out += buf;
        break;
      }
      case Type::String:
        escapeString(strVal, out);
        break;
      case Type::Array: {
        out.push_back('[');
        bool first = true;
        for (const auto &v : *arrVal) {
            if (!first)
                out.push_back(',');
            first = false;
            v.dumpTo(out);
        }
        out.push_back(']');
        break;
      }
      case Type::Object: {
        out.push_back('{');
        bool first = true;
        for (const auto &[key, v] : *objVal) {
            if (!first)
                out.push_back(',');
            first = false;
            escapeString(key, out);
            out.push_back(':');
            v.dumpTo(out);
        }
        out.push_back('}');
        break;
      }
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

namespace
{

/** Recursive-descent parser over untrusted text. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : src(text) {}

    Result<JsonValue>
    parse()
    {
        auto v = parseValue();
        if (!v.isOk())
            return v;
        skipWs();
        if (pos != src.size())
            return fail("trailing characters");
        return v;
    }

  private:
    Status
    failStatus(const std::string &msg) const
    {
        return Status(ErrorCode::InvalidArgument,
                      "json: " + msg + " at offset " +
                      std::to_string(pos));
    }

    Result<JsonValue> fail(const std::string &msg) const
    {
        return failStatus(msg);
    }

    void
    skipWs()
    {
        while (pos < src.size() &&
               (src[pos] == ' ' || src[pos] == '\t' ||
                src[pos] == '\n' || src[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < src.size() && src[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *word)
    {
        size_t len = std::strlen(word);
        if (src.compare(pos, len, word) == 0) {
            pos += len;
            return true;
        }
        return false;
    }

    Result<JsonValue>
    parseValue()
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= src.size())
            return fail("unexpected end of input");
        char c = src[pos];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"') {
            auto s = parseString();
            if (!s.isOk())
                return s.status();
            return JsonValue(s.value());
        }
        if (consumeWord("true"))
            return JsonValue(true);
        if (consumeWord("false"))
            return JsonValue(false);
        if (consumeWord("null"))
            return JsonValue();
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        return fail("unexpected character");
    }

    Result<std::string>
    parseString()
    {
        if (!consume('"'))
            return failStatus("expected string");
        std::string out;
        while (pos < src.size()) {
            char c = src[pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos >= src.size())
                    return failStatus("bad escape");
                char e = src[pos++];
                switch (e) {
                  case '"':  out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/':  out.push_back('/'); break;
                  case 'n':  out.push_back('\n'); break;
                  case 't':  out.push_back('\t'); break;
                  case 'r':  out.push_back('\r'); break;
                  case 'b':  out.push_back('\b'); break;
                  case 'f':  out.push_back('\f'); break;
                  case 'u': {
                    if (pos + 4 > src.size())
                        return failStatus("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = src[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code |= h - 'A' + 10;
                        else
                            return failStatus("bad \\u escape");
                    }
                    /* Encode as UTF-8 (BMP only). */
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(
                            static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(
                            static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                  }
                  default:
                    return failStatus("bad escape");
                }
            } else {
                out.push_back(c);
            }
        }
        return failStatus("unterminated string");
    }

    Result<JsonValue>
    parseNumber()
    {
        size_t start = pos;
        if (consume('-')) {}
        while (pos < src.size() && std::isdigit(
                   static_cast<unsigned char>(src[pos])))
            ++pos;
        bool is_double = false;
        if (pos < src.size() && src[pos] == '.') {
            is_double = true;
            ++pos;
            while (pos < src.size() && std::isdigit(
                       static_cast<unsigned char>(src[pos])))
                ++pos;
        }
        if (pos < src.size() && (src[pos] == 'e' || src[pos] == 'E')) {
            is_double = true;
            ++pos;
            if (pos < src.size() &&
                (src[pos] == '+' || src[pos] == '-'))
                ++pos;
            while (pos < src.size() && std::isdigit(
                       static_cast<unsigned char>(src[pos])))
                ++pos;
        }
        std::string text = src.substr(start, pos - start);
        if (text.empty() || text == "-")
            return fail("bad number");
        try {
            if (is_double)
                return JsonValue(std::stod(text));
            return JsonValue(
                static_cast<int64_t>(std::stoll(text)));
        } catch (const std::exception &) {
            return fail("number out of range");
        }
    }

    Result<JsonValue>
    parseArray()
    {
        consume('[');
        ++depth;
        JsonArray arr;
        skipWs();
        if (consume(']')) {
            --depth;
            return JsonValue(std::move(arr));
        }
        for (;;) {
            auto v = parseValue();
            if (!v.isOk())
                return v;
            arr.push_back(std::move(v.value()));
            skipWs();
            if (consume(']'))
                break;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
        --depth;
        return JsonValue(std::move(arr));
    }

    Result<JsonValue>
    parseObject()
    {
        consume('{');
        ++depth;
        JsonObject obj;
        skipWs();
        if (consume('}')) {
            --depth;
            return JsonValue(std::move(obj));
        }
        for (;;) {
            skipWs();
            auto key = parseString();
            if (!key.isOk())
                return key.status();
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            auto v = parseValue();
            if (!v.isOk())
                return v;
            obj[key.value()] = std::move(v.value());
            skipWs();
            if (consume('}'))
                break;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
        --depth;
        return JsonValue(std::move(obj));
    }

    static constexpr int kMaxDepth = 64;

    const std::string &src;
    size_t pos = 0;
    int depth = 0;
};

} // namespace

Result<JsonValue>
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace cronus
