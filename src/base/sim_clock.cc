#include "sim_clock.hh"

#include <cstdio>
#include <cstdlib>

namespace cronus
{

thread_local SimClock::Frame *SimClock::tlsFrame = nullptr;

namespace detail
{

void
clockInvariantFailure(const char *what, unsigned long long a,
                      unsigned long long b)
{
    /* Not panic(): the clock invariants guard the parallel engine,
     * whose worker threads must never unwind a PanicError through
     * the pool loop, and the checks must fire in NDEBUG builds too.
     * A torn virtual timeline is unrecoverable; die loudly. */
    std::fprintf(stderr, "cronus: %s (%llu, %llu)\n", what, a, b);
    std::fflush(stderr);
    std::abort();
}

} // namespace detail

} // namespace cronus
