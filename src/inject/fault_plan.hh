/**
 * @file
 * Deterministic fault plans for the simulated platform.
 *
 * A FaultPlan is a seeded, scriptable list of fault events. Each
 * event pairs a *trigger* (the Nth checked SPM access, optionally
 * filtered by partition and direction, or a virtual-time deadline)
 * with an *action* (kill a partition, fail the triggering access,
 * corrupt a named sRPC ring-header field, or skew the simulated
 * clock). Randomized helpers draw from the plan's own xoshiro256**
 * stream, so the same seed always produces the same trap point --
 * benches and tests replay failures exactly (§IV-D experiments).
 *
 * The plan is pure data; the FaultInjector (injector.hh) arms it
 * against a live Spm.
 */

#ifndef CRONUS_INJECT_FAULT_PLAN_HH
#define CRONUS_INJECT_FAULT_PLAN_HH

#include <string>
#include <vector>

#include "base/json.hh"
#include "base/rng.hh"
#include "base/sim_clock.hh"
#include "tee/spm.hh"

namespace cronus::inject
{

using tee::PartitionId;

/** Which checked accesses an access-counting trigger counts. */
struct AccessFilter
{
    /** Count only accesses by this partition (0 = any). */
    PartitionId pid = 0;
    /** Count reads, writes, or both. */
    bool countReads = true;
    bool countWrites = true;

    bool matches(const tee::SpmAccess &a) const
    {
        if (pid != 0 && a.pid != pid)
            return false;
        return a.isWrite ? countWrites : countReads;
    }

    static AccessFilter any() { return AccessFilter{}; }
    static AccessFilter readsBy(PartitionId p)
    {
        return AccessFilter{p, true, false};
    }
    static AccessFilter writesBy(PartitionId p)
    {
        return AccessFilter{p, false, true};
    }
};

struct FaultTrigger
{
    enum class Kind
    {
        /** Fire on the Nth access matching the filter (1-based). */
        NthAccess,
        /** Fire on the first matching access at or after a virtual
         *  time (the clock only advances via simulated work, so the
         *  trap point is still deterministic). */
        AtTime,
        /** Fire on the first matching access at/after `when` while
         *  the kill victim's partition is Ready at incarnation
         *  `nth`. Stacking one event per incarnation crashes every
         *  successive reboot — a deterministic crash-loop plan that
         *  drives a supervisor into its restart budget. */
        AtIncarnation,
        /** Fire on the Nth fleet migration (1-based), at the stage
         *  named by the action. Fleet-scoped: armed by the cluster's
         *  FleetInjector against Cluster::setStageHook; the SPM
         *  FaultInjector ignores these events. */
        NthMigration,
    };

    Kind kind = Kind::NthAccess;
    uint64_t nth = 1;
    SimTime when = 0;
    AccessFilter filter;
};

struct FaultAction
{
    enum class Kind
    {
        /** Panic a partition; the triggering access still proceeds,
         *  so the victim's peers discover the failure through the
         *  proceed-trap path (§IV-D). */
        KillPartition,
        /** Abort the triggering access with AccessFault. */
        FailAccess,
        /** Overwrite a named sRPC ring-header field of an attached
         *  channel with a 64-bit value (models corruption from a
         *  buggy or malicious peer). */
        CorruptHeader,
        /** Advance the simulated clock by a fixed skew (models a
         *  stalled device or timing perturbation). */
        SkewClock,
        /** Crash an entire SoC: every partition on the named node
         *  panics at once (power loss / fatal SoC error). Fleet-
         *  scoped -- armed by the FleetInjector, ignored by the SPM
         *  FaultInjector. */
        KillNode,
        /** Sever the interconnect link between two named nodes (or
         *  between a node and the fleet frontend when `nodeB` is
         *  empty): cross-node sRPC over the link fails with
         *  PeerFailed until the bench/test heals it. Fleet-scoped. */
        PartitionLink,
        /** Kill the migration source or destination node mid-
         *  migration, at the stage named by `stage` ("snapshot",
         *  "transfer", "reattest", "restore", "replay", "retire").
         *  The convergence oracle: afterwards exactly one of
         *  source/destination must hold the enclave. Fleet-scoped. */
        KillMigration,
    };

    Kind kind = Kind::KillPartition;
    PartitionId victim = 0;        ///< KillPartition
    std::string headerField;       ///< CorruptHeader ("rid", ...)
    uint64_t corruptValue = 0;     ///< CorruptHeader
    size_t channelIndex = 0;       ///< CorruptHeader (attach order)
    SimTime skewNs = 0;            ///< SkewClock
    std::string node;              ///< KillNode / PartitionLink
    std::string nodeB;             ///< PartitionLink (other end)
    std::string stage;             ///< KillMigration (stage name)
    bool killDst = false;          ///< KillMigration: dst, not src
};

/** True for events the SPM-level FaultInjector must not arm (they
 *  target fleet machinery: nodes, links, migration windows). */
bool isFleetEvent(const FaultTrigger &t, const FaultAction &a);

struct FaultEvent
{
    uint64_t id = 0;
    FaultTrigger trigger;
    FaultAction action;
};

/**
 * Shape of a plan drawn by FaultPlan::randomPlan. The caller lists
 * what is allowed (candidate kill victims, attached-channel count for
 * header corruption, the access-ordinal window) and the helper draws
 * a schedule from the seed -- the scenario fuzzer's source of
 * randomized-but-replayable fault schedules.
 */
struct RandomPlanSpec
{
    /** Candidate victims for KillPartition (empty disables kills). */
    std::vector<PartitionId> killVictims;
    /** Channels that will be attached, for CorruptHeader targets
     *  (0 disables corruption events). */
    size_t channelCount = 0;
    /** Events to draw, inclusive bounds. */
    uint32_t minEvents = 0;
    uint32_t maxEvents = 2;
    /** Access-ordinal window for NthAccess triggers. */
    uint64_t minNth = 5;
    uint64_t maxNth = 80;
    /** Upper bound on SkewClock skews. */
    SimTime maxSkewNs = kNsPerMs;
    bool allowFailAccess = true;
    bool allowSkewClock = true;
};

/**
 * Builder for a deterministic fault schedule. All helpers return
 * *this for chaining.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(uint64_t seed = 1) : planSeed(seed), rng(seed)
    {
    }

    uint64_t seed() const { return planSeed; }

    /** Kill @p victim on the @p nth access matching @p f. */
    FaultPlan &killOnAccess(uint64_t nth, PartitionId victim,
                            AccessFilter f = AccessFilter::any());

    /** Kill @p victim on the @p nth access drawn uniformly from
     *  [lo, hi] using the plan's seeded stream. */
    FaultPlan &killOnRandomAccess(uint64_t lo, uint64_t hi,
                                  PartitionId victim,
                                  AccessFilter f = AccessFilter::any());

    /** Kill @p victim on the first access at/after @p when. */
    FaultPlan &killAtTime(SimTime when, PartitionId victim);

    /** Kill @p victim's incarnation @p incarnation on its first
     *  matching access at/after @p when (crash-loop building block:
     *  one event per incarnation). */
    FaultPlan &killIncarnation(uint64_t incarnation, SimTime when,
                               PartitionId victim,
                               AccessFilter f = AccessFilter::any());

    /** Fail the @p nth matching access with AccessFault. */
    FaultPlan &failAccess(uint64_t nth,
                          AccessFilter f = AccessFilter::any());

    /** On the @p nth matching access, write @p value over header
     *  @p field of the channel attached at @p channel_index. */
    FaultPlan &corruptHeader(uint64_t nth, const std::string &field,
                             uint64_t value, size_t channel_index = 0,
                             AccessFilter f = AccessFilter::any());

    /** On the @p nth matching access, advance the clock @p skew_ns. */
    FaultPlan &skewClock(uint64_t nth, SimTime skew_ns,
                         AccessFilter f = AccessFilter::any());

    /* --- fleet-scoped events (cluster::FleetInjector) --- */

    /** Crash every partition on @p node at/after virtual @p when. */
    FaultPlan &killNodeAtTime(SimTime when, const std::string &node);

    /** Sever the @p a <-> @p b interconnect link at/after @p when
     *  (empty @p b = the fleet frontend link). */
    FaultPlan &partitionLinkAtTime(SimTime when, const std::string &a,
                                   const std::string &b);

    /** On the @p nth fleet migration, kill the source (or, with
     *  @p kill_dst, the destination) node when the migration reaches
     *  @p stage ("snapshot" ... "retire"). */
    FaultPlan &killMigration(uint64_t nth, const std::string &stage,
                             bool kill_dst = false);

    /**
     * Draw a whole schedule from @p seed within @p spec. The same
     * (seed, spec) pair always produces the identical plan; event
     * kinds are weighted toward kills (the interesting failure
     * mode), and corrupt-header values stay small so a corrupted
     * ring index perturbs rather than wedges the executor.
     */
    static FaultPlan randomPlan(uint64_t seed,
                                const RandomPlanSpec &spec);

    const std::vector<FaultEvent> &events() const { return schedule; }
    size_t size() const { return schedule.size(); }

    /** The schedule as JSON (audit reports, golden tests). */
    JsonValue toJson() const;

  private:
    FaultPlan &add(const FaultTrigger &t, const FaultAction &a);

    uint64_t planSeed;
    Rng rng;
    std::vector<FaultEvent> schedule;
};

} // namespace cronus::inject

#endif // CRONUS_INJECT_FAULT_PLAN_HH
