/**
 * @file
 * FaultInjector: arms a FaultPlan against a live Spm.
 *
 * The injector installs itself as the Spm's access hook, so every
 * checked stage-2 memory access becomes a potential trap point. When
 * an event's trigger matches, its action runs *before* the access is
 * translated: a killed partition's very next shared-memory touch
 * already takes the proceed-trap path (§IV-D), a failed access
 * surfaces AccessFault to the issuing driver, a header corruption
 * lands between two ring operations, and a clock skew charges
 * virtual time the workload never asked for.
 *
 * Every firing is logged with the access ordinal and the virtual
 * time before/after the action, so benches can report per-step
 * recovery costs straight from the injection log.
 */

#ifndef CRONUS_INJECT_INJECTOR_HH
#define CRONUS_INJECT_INJECTOR_HH

#include "core/srpc.hh"
#include "fault_plan.hh"

namespace cronus::inject
{

/** One fault that actually fired. */
struct FiredFault
{
    uint64_t eventId = 0;
    /** Access ordinal (SpmAccess::seq) that pulled the trigger. */
    uint64_t seq = 0;
    /** Partition whose access pulled the trigger. */
    PartitionId accessor = 0;
    /** Virtual time before / after the action ran. */
    SimTime tBefore = 0;
    SimTime tAfter = 0;
    std::string description;
};

class FaultInjector
{
  public:
    /** Builds the injector; call arm() to install the hook. */
    FaultInjector(tee::Spm &spm, FaultPlan plan);
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Install the Spm access hook (resets the access ordinal). */
    void arm();
    /** Remove the hook; pending events stay pending. */
    void disarm();
    bool armed() const { return hookArmed; }

    /**
     * Register @p ch as a corruption target. CorruptHeader events
     * address channels by attach order (channelIndex).
     */
    size_t attachChannel(core::SrpcChannel &ch);

    const FaultPlan &plan() const { return faultPlan; }
    const std::vector<FiredFault> &fired() const { return firedLog; }
    bool allFired() const
    {
        return firedLog.size() == faultPlan.size();
    }

    /** Injection log + plan as JSON (bench audit reports). */
    JsonValue report() const;

  private:
    Status onAccess(const tee::SpmAccess &access);
    Status execute(const FaultEvent &e, const tee::SpmAccess &access);

    tee::Spm &spm;
    FaultPlan faultPlan;
    std::vector<core::SrpcChannel *> channels;
    std::vector<bool> firedFlags;        ///< by event index
    std::vector<uint64_t> matchCounts;   ///< by event index
    std::vector<FiredFault> firedLog;
    bool hookArmed = false;
    bool inHook = false;  ///< actions may recurse into the Spm
};

} // namespace cronus::inject

#endif // CRONUS_INJECT_INJECTOR_HH
