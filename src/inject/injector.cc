#include "injector.hh"

#include "base/bytes.hh"

namespace cronus::inject
{

FaultInjector::FaultInjector(tee::Spm &partition_manager,
                             FaultPlan plan)
    : spm(partition_manager), faultPlan(std::move(plan)),
      firedFlags(faultPlan.size(), false),
      matchCounts(faultPlan.size(), 0)
{
}

FaultInjector::~FaultInjector()
{
    /* The hook captures `this`; never leave it dangling. */
    if (hookArmed)
        disarm();
}

void
FaultInjector::arm()
{
    spm.setAccessHook([this](const tee::SpmAccess &a) {
        return onAccess(a);
    });
    hookArmed = true;
}

void
FaultInjector::disarm()
{
    spm.setAccessHook({});
    hookArmed = false;
}

size_t
FaultInjector::attachChannel(core::SrpcChannel &ch)
{
    channels.push_back(&ch);
    return channels.size() - 1;
}

Status
FaultInjector::onAccess(const tee::SpmAccess &access)
{
    /* Actions (panic, header pokes) may re-enter the Spm; those
     * internal accesses are not workload trap points. */
    if (inHook)
        return Status::ok();
    inHook = true;

    SimClock &clock = spm.monitor().platform().clock();
    const auto &events = faultPlan.events();
    Status verdict = Status::ok();
    for (size_t i = 0; i < events.size(); ++i) {
        if (firedFlags[i])
            continue;
        const FaultEvent &e = events[i];
        /* Node/link/migration events belong to the fleet layer; the
         * SPM-level injector leaves them unfired for the
         * FleetInjector to claim. */
        if (isFleetEvent(e.trigger, e.action))
            continue;
        if (!e.trigger.filter.matches(access))
            continue;
        bool fire = false;
        if (e.trigger.kind == FaultTrigger::Kind::NthAccess) {
            fire = ++matchCounts[i] == e.trigger.nth;
        } else if (e.trigger.kind == FaultTrigger::Kind::AtTime) {
            fire = clock.now() >= e.trigger.when;
        } else {
            /* AtIncarnation: wait until the victim's partition is
             * back up at the targeted incarnation; the event stays
             * pending across intermediate deaths and reboots. */
            auto victim = spm.partition(e.action.victim);
            fire = clock.now() >= e.trigger.when && victim.isOk() &&
                   victim.value()->state ==
                       tee::PartitionState::Ready &&
                   victim.value()->incarnation == e.trigger.nth;
        }
        if (!fire)
            continue;

        firedFlags[i] = true;
        FiredFault rec;
        rec.eventId = e.id;
        rec.seq = access.seq;
        rec.accessor = access.pid;
        rec.tBefore = clock.now();
        Status s = execute(e, access);
        rec.tAfter = clock.now();
        if (s.isOk()) {
            switch (e.action.kind) {
              case FaultAction::Kind::KillPartition:
                rec.description =
                    "killed partition " +
                    std::to_string(e.action.victim);
                break;
              case FaultAction::Kind::CorruptHeader:
                rec.description =
                    "corrupted header '" + e.action.headerField + "'";
                break;
              case FaultAction::Kind::SkewClock:
                rec.description =
                    "skewed clock +" +
                    std::to_string(e.action.skewNs) + "ns";
                break;
              default:
                rec.description = "fired";
                break;
            }
        } else {
            rec.description = s.message();
        }
        firedLog.push_back(rec);
        if (!s.isOk() &&
            e.action.kind == FaultAction::Kind::FailAccess) {
            verdict = s;
            break;  /* the access is aborted; stop evaluating */
        }
    }
    inHook = false;
    return verdict;
}

Status
FaultInjector::execute(const FaultEvent &e,
                       const tee::SpmAccess &access)
{
    hw::Platform &plat = spm.monitor().platform();
    switch (e.action.kind) {
      case FaultAction::Kind::KillPartition: {
        /* The triggering access proceeds afterwards: surviving
         * peers learn of the death through proceed-trap. */
        Status s = spm.panic(e.action.victim);
        (void)s;  /* killing an already-dead partition is a no-op */
        return Status::ok();
      }
      case FaultAction::Kind::FailAccess:
        return Status(ErrorCode::AccessFault,
                      "injected fault on access #" +
                      std::to_string(access.seq) + " by partition " +
                      std::to_string(access.pid));
      case FaultAction::Kind::CorruptHeader: {
        if (e.action.channelIndex >= channels.size())
            return Status(ErrorCode::InvalidState,
                          "corrupt_header: no channel attached at "
                          "index " +
                          std::to_string(e.action.channelIndex));
        core::SrpcChannel *ch = channels[e.action.channelIndex];
        auto off =
            core::SrpcChannel::headerFieldOffset(e.action.headerField);
        if (!off.isOk())
            return off.status();
        ByteWriter w;
        w.putU64(e.action.corruptValue);
        /* Written straight to DRAM: corruption does not go through
         * stage-2, exactly like a rogue peer or bit flip. */
        return plat.dram().write(ch->ringBase() + off.value(),
                                 w.take());
      }
      case FaultAction::Kind::SkewClock:
        plat.clock().advance(e.action.skewNs);
        return Status::ok();
      case FaultAction::Kind::KillNode:
      case FaultAction::Kind::PartitionLink:
      case FaultAction::Kind::KillMigration:
        /* Unreachable: onAccess() filters fleet events out. */
        return Status(ErrorCode::Unsupported,
                      "fleet-scoped event on the SPM injector");
    }
    return Status(ErrorCode::InvalidArgument, "unknown fault action");
}

JsonValue
FaultInjector::report() const
{
    JsonArray fired;
    for (const FiredFault &f : firedLog) {
        JsonObject o;
        o["event"] = static_cast<int64_t>(f.eventId);
        o["seq"] = static_cast<int64_t>(f.seq);
        o["accessor"] = static_cast<int64_t>(f.accessor);
        o["t_before_ns"] = static_cast<int64_t>(f.tBefore);
        o["t_after_ns"] = static_cast<int64_t>(f.tAfter);
        o["description"] = f.description;
        fired.push_back(JsonValue(o));
    }
    JsonObject report;
    report["plan"] = faultPlan.toJson();
    report["fired"] = JsonValue(fired);
    report["pending"] =
        static_cast<int64_t>(faultPlan.size() - firedLog.size());
    return JsonValue(report);
}

} // namespace cronus::inject
