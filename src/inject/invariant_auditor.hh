/**
 * @file
 * InvariantAuditor: runtime checking of the simulator's safety
 * invariants under fault injection.
 *
 * Registered as the SrpcObserver of channels and as the grant hook
 * of the Spm, the auditor checks on every operation:
 *
 *  - streamCheck   Sid <= Rid <= Sid + slots: the executor never
 *                  runs ahead of the caller and the caller never
 *                  outruns the ring (§IV-C);
 *  - slot lifetime resultOf never reads a recycled slot: a result
 *                  is only fetched while Rid - r < slots (see the
 *                  rule in srpc.hh);
 *  - grant         every grant created is torn down exactly once --
 *    accounting    revoked on the normal path or retired by failure
 *                  handling, never both, never twice, never leaked.
 *
 * Violations accumulate with descriptions; finalCheck() additionally
 * flags grants still alive at teardown time. report() serializes
 * counters and violations as JSON via base/stats.
 */

#ifndef CRONUS_INJECT_INVARIANT_AUDITOR_HH
#define CRONUS_INJECT_INVARIANT_AUDITOR_HH

#include <map>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "core/srpc.hh"
#include "tee/spm.hh"

namespace cronus::inject
{

struct Violation
{
    /** "streamCheck", "slotLifetime" or "grantAccounting". */
    std::string invariant;
    std::string detail;
};

class InvariantAuditor : public core::SrpcObserver
{
  public:
    /** Raises the tracer to at least Ring mode so a violation can
     *  always dump the last-N-events flight timeline. */
    InvariantAuditor();
    ~InvariantAuditor() override;

    InvariantAuditor(const InvariantAuditor &) = delete;
    InvariantAuditor &operator=(const InvariantAuditor &) = delete;

    /** Install as @p spm's grant hook (grant accounting). */
    void attachSpm(tee::Spm &spm);

    /** Observe @p ch (stream + slot-lifetime checks). */
    void attachChannel(core::SrpcChannel &ch);

    /* --- SrpcObserver --- */
    void onSetup(const core::SrpcChannel &ch,
                 uint64_t grant_id) override;
    void onEnqueue(const core::SrpcChannel &ch, uint64_t rid,
                   uint64_t sid) override;
    void onExecuted(const core::SrpcChannel &ch, uint64_t rid,
                    uint64_t sid) override;
    void onResultRead(const core::SrpcChannel &ch,
                      uint64_t request_id, uint64_t rid,
                      uint64_t sid) override;
    void onFailed(const core::SrpcChannel &ch) override;
    void onClosed(const core::SrpcChannel &ch, uint64_t grant_id,
                  bool revoked) override;

    /**
     * End-of-run audit: flags grants created but never torn down.
     * Returns ok() iff no violation was recorded during the whole
     * run. Call after all channels are closed/destroyed.
     */
    Status finalCheck();

    const std::vector<Violation> &violations() const
    {
        return violationLog;
    }
    StatGroup &statistics() { return auditStats; }

    /** Counters + violations as a JSON audit report. */
    JsonValue report() const;

  private:
    void onGrantEvent(const tee::GrantEvent &ev);
    void streamCheck(const core::SrpcChannel &ch, uint64_t rid,
                     uint64_t sid, const char *where);
    void flag(const std::string &invariant, const std::string &detail);

    struct GrantRecord
    {
        tee::PartitionId owner = 0;
        tee::PartitionId peer = 0;
        uint64_t created = 0;
        uint64_t teardowns = 0;  ///< revokes + retires
    };

    tee::Spm *attachedSpm = nullptr;
    std::map<uint64_t, GrantRecord> grantLog;
    std::vector<Violation> violationLog;
    StatGroup auditStats;
};

} // namespace cronus::inject

#endif // CRONUS_INJECT_INVARIANT_AUDITOR_HH
