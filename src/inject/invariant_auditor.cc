#include "invariant_auditor.hh"

#include "obs/trace.hh"

namespace cronus::inject
{

InvariantAuditor::InvariantAuditor()
{
    /* The flight recorder needs events to dump: with tracing off,
     * raise it to Ring (bounded, no export) -- never lower a mode
     * the user already chose. */
    obs::Tracer::instance().ensureMode(obs::TraceMode::Ring);
}

InvariantAuditor::~InvariantAuditor()
{
    /* The grant hook captures `this`; never leave it dangling.
     * (Channels must be destroyed before their auditor -- declare
     * the auditor first.) */
    if (attachedSpm)
        attachedSpm->setGrantHook({});
}

void
InvariantAuditor::attachSpm(tee::Spm &spm)
{
    attachedSpm = &spm;
    spm.setGrantHook([this](const tee::GrantEvent &ev) {
        onGrantEvent(ev);
    });
}

void
InvariantAuditor::attachChannel(core::SrpcChannel &ch)
{
    ch.setObserver(this);
}

void
InvariantAuditor::flag(const std::string &invariant,
                       const std::string &detail)
{
    violationLog.push_back(Violation{invariant, detail});
    auditStats.counter("violations").inc();
    auto &tr = obs::Tracer::instance();
    if (tr.active()) {
        JsonObject args;
        args["invariant"] = invariant;
        args["detail"] = detail;
        tr.instant(tr.track("audit"), "audit.violation", "audit",
                   std::move(args));
    }
    tr.dumpFlight("invariant violation: " + invariant);
}

void
InvariantAuditor::streamCheck(const core::SrpcChannel &ch,
                              uint64_t rid, uint64_t sid,
                              const char *where)
{
    if (sid > rid)
        flag("streamCheck",
             std::string(where) + ": Sid " + std::to_string(sid) +
             " > Rid " + std::to_string(rid));
    else if (rid > sid + ch.config().slots)
        flag("streamCheck",
             std::string(where) + ": Rid " + std::to_string(rid) +
             " > Sid " + std::to_string(sid) + " + " +
             std::to_string(ch.config().slots) + " slots");
}

void
InvariantAuditor::onSetup(const core::SrpcChannel &, uint64_t)
{
    auditStats.counter("channel_setups").inc();
}

void
InvariantAuditor::onEnqueue(const core::SrpcChannel &ch,
                            uint64_t rid, uint64_t sid)
{
    auditStats.counter("enqueues").inc();
    streamCheck(ch, rid, sid, "enqueue");
}

void
InvariantAuditor::onExecuted(const core::SrpcChannel &ch,
                             uint64_t rid, uint64_t sid)
{
    auditStats.counter("executions").inc();
    streamCheck(ch, rid, sid, "execute");
}

void
InvariantAuditor::onResultRead(const core::SrpcChannel &ch,
                               uint64_t request_id, uint64_t rid,
                               uint64_t sid)
{
    auditStats.counter("result_reads").inc();
    streamCheck(ch, rid, sid, "resultOf");
    if (request_id >= rid)
        flag("slotLifetime",
             "resultOf(" + std::to_string(request_id) +
             ") reads an unissued request (Rid " +
             std::to_string(rid) + ")");
    else if (rid - request_id >= ch.config().slots)
        flag("slotLifetime",
             "resultOf(" + std::to_string(request_id) +
             ") reads a recycled slot (Rid " + std::to_string(rid) +
             ", " + std::to_string(ch.config().slots) + " slots)");
}

void
InvariantAuditor::onFailed(const core::SrpcChannel &)
{
    auditStats.counter("channel_failures").inc();
}

void
InvariantAuditor::onClosed(const core::SrpcChannel &, uint64_t,
                           bool revoked)
{
    auditStats.counter("channel_closes").inc();
    if (revoked)
        auditStats.counter("channel_close_revokes").inc();
}

void
InvariantAuditor::onGrantEvent(const tee::GrantEvent &ev)
{
    switch (ev.kind) {
      case tee::GrantEvent::Kind::Created: {
        auditStats.counter("grants_created").inc();
        GrantRecord &rec = grantLog[ev.id];
        rec.owner = ev.owner;
        rec.peer = ev.peer;
        if (++rec.created > 1)
            flag("grantAccounting",
                 "grant " + std::to_string(ev.id) +
                 " created twice");
        break;
      }
      case tee::GrantEvent::Kind::Revoked:
      case tee::GrantEvent::Kind::Retired: {
        bool retired = ev.kind == tee::GrantEvent::Kind::Retired;
        auditStats
            .counter(retired ? "grants_retired" : "grants_revoked")
            .inc();
        auto it = grantLog.find(ev.id);
        if (it == grantLog.end()) {
            flag("grantAccounting",
                 std::string(retired ? "retire" : "revoke") +
                 " of unknown grant " + std::to_string(ev.id));
            break;
        }
        if (++it->second.teardowns > 1)
            flag("grantAccounting",
                 "grant " + std::to_string(ev.id) +
                 " torn down " +
                 std::to_string(it->second.teardowns) + " times");
        break;
      }
    }
}

Status
InvariantAuditor::finalCheck()
{
    for (const auto &[id, rec] : grantLog) {
        if (rec.teardowns == 0)
            flag("grantAccounting",
                 "grant " + std::to_string(id) + " (owner " +
                 std::to_string(rec.owner) + ", peer " +
                 std::to_string(rec.peer) + ") never torn down");
    }
    if (!violationLog.empty())
        return Status(ErrorCode::IntegrityViolation,
                      std::to_string(violationLog.size()) +
                      " invariant violation(s); see report()");
    return Status::ok();
}

JsonValue
InvariantAuditor::report() const
{
    JsonArray vs;
    for (const Violation &v : violationLog) {
        JsonObject o;
        o["invariant"] = v.invariant;
        o["detail"] = v.detail;
        vs.push_back(JsonValue(o));
    }
    JsonObject report;
    report["ok"] = violationLog.empty();
    report["violations"] = JsonValue(vs);
    report["counters"] = auditStats.toJson();
    report["grants_tracked"] = static_cast<int64_t>(grantLog.size());
    return JsonValue(report);
}

} // namespace cronus::inject
