#include "fault_plan.hh"

namespace cronus::inject
{

FaultPlan &
FaultPlan::add(const FaultTrigger &t, const FaultAction &a)
{
    FaultEvent e;
    e.id = schedule.size() + 1;
    e.trigger = t;
    e.action = a;
    schedule.push_back(e);
    return *this;
}

FaultPlan &
FaultPlan::killOnAccess(uint64_t nth, PartitionId victim,
                        AccessFilter f)
{
    FaultTrigger t;
    t.kind = FaultTrigger::Kind::NthAccess;
    t.nth = nth;
    t.filter = f;
    FaultAction a;
    a.kind = FaultAction::Kind::KillPartition;
    a.victim = victim;
    return add(t, a);
}

FaultPlan &
FaultPlan::killOnRandomAccess(uint64_t lo, uint64_t hi,
                              PartitionId victim, AccessFilter f)
{
    uint64_t span = (hi >= lo) ? hi - lo + 1 : 1;
    return killOnAccess(lo + rng.nextBelow(span), victim, f);
}

FaultPlan &
FaultPlan::killAtTime(SimTime when, PartitionId victim)
{
    FaultTrigger t;
    t.kind = FaultTrigger::Kind::AtTime;
    t.when = when;
    FaultAction a;
    a.kind = FaultAction::Kind::KillPartition;
    a.victim = victim;
    return add(t, a);
}

FaultPlan &
FaultPlan::killIncarnation(uint64_t incarnation, SimTime when,
                           PartitionId victim, AccessFilter f)
{
    FaultTrigger t;
    t.kind = FaultTrigger::Kind::AtIncarnation;
    t.nth = incarnation;
    t.when = when;
    t.filter = f;
    FaultAction a;
    a.kind = FaultAction::Kind::KillPartition;
    a.victim = victim;
    return add(t, a);
}

FaultPlan &
FaultPlan::failAccess(uint64_t nth, AccessFilter f)
{
    FaultTrigger t;
    t.kind = FaultTrigger::Kind::NthAccess;
    t.nth = nth;
    t.filter = f;
    FaultAction a;
    a.kind = FaultAction::Kind::FailAccess;
    return add(t, a);
}

FaultPlan &
FaultPlan::corruptHeader(uint64_t nth, const std::string &field,
                         uint64_t value, size_t channel_index,
                         AccessFilter f)
{
    FaultTrigger t;
    t.kind = FaultTrigger::Kind::NthAccess;
    t.nth = nth;
    t.filter = f;
    FaultAction a;
    a.kind = FaultAction::Kind::CorruptHeader;
    a.headerField = field;
    a.corruptValue = value;
    a.channelIndex = channel_index;
    return add(t, a);
}

FaultPlan &
FaultPlan::skewClock(uint64_t nth, SimTime skew_ns, AccessFilter f)
{
    FaultTrigger t;
    t.kind = FaultTrigger::Kind::NthAccess;
    t.nth = nth;
    t.filter = f;
    FaultAction a;
    a.kind = FaultAction::Kind::SkewClock;
    a.skewNs = skew_ns;
    return add(t, a);
}

FaultPlan &
FaultPlan::killNodeAtTime(SimTime when, const std::string &node)
{
    FaultTrigger t;
    t.kind = FaultTrigger::Kind::AtTime;
    t.when = when;
    FaultAction a;
    a.kind = FaultAction::Kind::KillNode;
    a.node = node;
    return add(t, a);
}

FaultPlan &
FaultPlan::partitionLinkAtTime(SimTime when, const std::string &na,
                               const std::string &nb)
{
    FaultTrigger t;
    t.kind = FaultTrigger::Kind::AtTime;
    t.when = when;
    FaultAction a;
    a.kind = FaultAction::Kind::PartitionLink;
    a.node = na;
    a.nodeB = nb;
    return add(t, a);
}

FaultPlan &
FaultPlan::killMigration(uint64_t nth, const std::string &stage,
                         bool kill_dst)
{
    FaultTrigger t;
    t.kind = FaultTrigger::Kind::NthMigration;
    t.nth = nth;
    FaultAction a;
    a.kind = FaultAction::Kind::KillMigration;
    a.stage = stage;
    a.killDst = kill_dst;
    return add(t, a);
}

bool
isFleetEvent(const FaultTrigger &t, const FaultAction &a)
{
    if (t.kind == FaultTrigger::Kind::NthMigration)
        return true;
    switch (a.kind) {
      case FaultAction::Kind::KillNode:
      case FaultAction::Kind::PartitionLink:
      case FaultAction::Kind::KillMigration:
        return true;
      default:
        return false;
    }
}

FaultPlan
FaultPlan::randomPlan(uint64_t seed, const RandomPlanSpec &spec)
{
    FaultPlan plan(seed);
    Rng draw(seed ^ 0xfa017d1a5ULL);
    uint64_t span = (spec.maxEvents >= spec.minEvents)
                        ? spec.maxEvents - spec.minEvents + 1
                        : 1;
    uint32_t count = spec.minEvents +
                     static_cast<uint32_t>(draw.nextBelow(span));
    uint64_t nth_span = (spec.maxNth >= spec.minNth)
                            ? spec.maxNth - spec.minNth + 1
                            : 1;
    static const char *kFields[] = {"rid", "sid"};
    for (uint32_t i = 0; i < count; ++i) {
        uint64_t nth = spec.minNth + draw.nextBelow(nth_span);
        /* Weighted kinds: kill 40%, fail 25%, corrupt 20%, skew
         * 15%; disallowed kinds fall through to the next one. */
        uint64_t roll = draw.nextBelow(100);
        if (roll < 40 && !spec.killVictims.empty()) {
            PartitionId victim = spec.killVictims[draw.nextBelow(
                spec.killVictims.size())];
            plan.killOnAccess(nth, victim);
        } else if (roll < 65 && spec.allowFailAccess) {
            plan.failAccess(nth);
        } else if (roll < 85 && spec.channelCount > 0) {
            plan.corruptHeader(nth, kFields[draw.nextBelow(2)],
                               draw.nextBelow(32),
                               draw.nextBelow(spec.channelCount));
        } else if (spec.allowSkewClock && spec.maxSkewNs > 0) {
            plan.skewClock(nth,
                           1 + draw.nextBelow(spec.maxSkewNs));
        }
    }
    return plan;
}

namespace
{

const char *
triggerKindName(FaultTrigger::Kind k)
{
    switch (k) {
      case FaultTrigger::Kind::NthAccess: return "nth_access";
      case FaultTrigger::Kind::AtTime: return "at_time";
      case FaultTrigger::Kind::AtIncarnation: return "at_incarnation";
      case FaultTrigger::Kind::NthMigration: return "nth_migration";
    }
    return "?";
}

const char *
actionKindName(FaultAction::Kind k)
{
    switch (k) {
      case FaultAction::Kind::KillPartition: return "kill_partition";
      case FaultAction::Kind::FailAccess: return "fail_access";
      case FaultAction::Kind::CorruptHeader: return "corrupt_header";
      case FaultAction::Kind::SkewClock: return "skew_clock";
      case FaultAction::Kind::KillNode: return "kill_node";
      case FaultAction::Kind::PartitionLink: return "partition_link";
      case FaultAction::Kind::KillMigration: return "kill_migration";
    }
    return "?";
}

} // namespace

JsonValue
FaultPlan::toJson() const
{
    JsonArray events;
    for (const FaultEvent &e : schedule) {
        JsonObject t;
        t["kind"] = triggerKindName(e.trigger.kind);
        if (e.trigger.kind != FaultTrigger::Kind::AtTime)
            t["nth"] = static_cast<int64_t>(e.trigger.nth);
        if (e.trigger.kind != FaultTrigger::Kind::NthAccess)
            t["when_ns"] = static_cast<int64_t>(e.trigger.when);
        if (e.trigger.filter.pid != 0)
            t["pid"] = static_cast<int64_t>(e.trigger.filter.pid);
        t["reads"] = e.trigger.filter.countReads;
        t["writes"] = e.trigger.filter.countWrites;

        JsonObject a;
        a["kind"] = actionKindName(e.action.kind);
        switch (e.action.kind) {
          case FaultAction::Kind::KillPartition:
            a["victim"] = static_cast<int64_t>(e.action.victim);
            break;
          case FaultAction::Kind::FailAccess:
            break;
          case FaultAction::Kind::CorruptHeader:
            a["field"] = e.action.headerField;
            a["value"] = static_cast<int64_t>(e.action.corruptValue);
            a["channel"] =
                static_cast<int64_t>(e.action.channelIndex);
            break;
          case FaultAction::Kind::SkewClock:
            a["skew_ns"] = static_cast<int64_t>(e.action.skewNs);
            break;
          case FaultAction::Kind::KillNode:
            a["node"] = e.action.node;
            break;
          case FaultAction::Kind::PartitionLink:
            a["node"] = e.action.node;
            a["node_b"] = e.action.nodeB;
            break;
          case FaultAction::Kind::KillMigration:
            a["stage"] = e.action.stage;
            a["kill_dst"] = e.action.killDst;
            break;
        }

        JsonObject ev;
        ev["id"] = static_cast<int64_t>(e.id);
        ev["trigger"] = JsonValue(t);
        ev["action"] = JsonValue(a);
        events.push_back(JsonValue(ev));
    }
    JsonObject plan;
    plan["seed"] = static_cast<int64_t>(planSeed);
    plan["events"] = JsonValue(events);
    return JsonValue(plan);
}

} // namespace cronus::inject
