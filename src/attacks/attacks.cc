#include "attacks.hh"

#include "accel/builtin_kernels.hh"
#include "core/auto_partition.hh"
#include "core/system.hh"

namespace cronus::attacks
{

using namespace core;

namespace
{

/* ---------------- fixture helpers ---------------- */

void
registerFixtures()
{
    accel::registerBuiltinKernels();
    auto &reg = CpuFunctionRegistry::instance();
    if (!reg.has("atk_echo")) {
        reg.registerFunction("atk_echo", [](CpuCallContext &ctx) {
            ctx.charge(10);
            return Result<Bytes>(ctx.args);
        });
    }
}

Bytes
cpuImage()
{
    CpuImage image;
    image.exports = {"atk_echo"};
    return image.serialize();
}

Bytes
gpuImage()
{
    accel::GpuModuleImage image{"atk.cubin",
                                {"fill_f32", "vec_add_f32"}};
    return image.serialize();
}

std::string
cpuManifest()
{
    Manifest m;
    m.deviceType = "cpu";
    m.images["atk.so"] = crypto::digestHex(crypto::sha256(cpuImage()));
    m.mEcalls.push_back({"atk_echo", false});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

std::string
gpuManifest()
{
    Manifest m;
    m.deviceType = "gpu";
    m.images["atk.cubin"] =
        crypto::digestHex(crypto::sha256(gpuImage()));
    for (const auto &fn : CudaRuntime::apiSurface())
        m.mEcalls.push_back(
            {fn, AutoPartitioner::cudaCallIsAsync(fn)});
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

struct Scene
{
    CronusSystem system;
    AppHandle cpu;
    AppHandle gpu;
    std::unique_ptr<SrpcChannel> channel;

    Scene()
    {
        Logger::instance().setQuiet(true);
        registerFixtures();
        cpu = system.createEnclave(cpuManifest(), "atk.so",
                                   cpuImage()).value();
        gpu = system.createEnclave(gpuManifest(), "atk.cubin",
                                   gpuImage()).value();
        channel = std::move(system.connect(cpu, gpu).value());
    }
};

AttackOutcome
outcome(const std::string &name, bool blocked,
        const std::string &detail)
{
    return AttackOutcome{name, blocked, detail};
}

} // namespace

/* ---------------- scenarios ---------------- */

AttackOutcome
attackNormalWorldReadsSmem()
{
    Scene s;
    /* Put sensitive data on the ring. */
    Bytes secret = toBytes("training-batch-secret");
    auto va = s.channel->callSync("cuMemAlloc",
                                  CudaRuntime::encodeMemAlloc(256));
    s.channel->call("cuMemcpyHtoD",
                    CudaRuntime::encodeMemcpyHtoD(
                        CudaRuntime::decodeU64Result(va.value())
                            .value(),
                        secret));

    auto grant = s.system.spm().grant(s.channel->grantId());
    tee::PhysAddr smem = grant.value()->base;
    auto peek = s.system.normalWorld().read(smem, 4096);
    bool blocked = peek.code() == ErrorCode::AccessFault;
    return outcome("normal-world-reads-smem", blocked,
                   blocked ? "TZASC faulted the read"
                           : "ring contents leaked");
}

AttackOutcome
attackNormalWorldTampersSmem()
{
    Scene s;
    auto grant = s.system.spm().grant(s.channel->grantId());
    tee::PhysAddr smem = grant.value()->base;
    /* Try to bump Rid to forge a request. */
    Status w = s.system.normalWorld().write(
        smem + 0x08, Bytes{0xff, 0xff, 0xff, 0xff});
    bool blocked = w.code() == ErrorCode::AccessFault;
    return outcome("normal-world-tampers-smem", blocked,
                   blocked ? "TZASC faulted the write"
                           : "RPC metadata forged");
}

AttackOutcome
attackReplayEcall()
{
    Scene s;
    /* Record a legitimate request, replay it verbatim. */
    Bytes args = toBytes("withdraw $100");
    uint64_t nonce = ++s.cpu.nonce;
    Bytes tag = EnclaveManager::authTag(s.cpu.secret, s.cpu.eid,
                                        nonce, "atk_echo", args);
    auto &manager = s.cpu.host->enclaveManager();
    auto first = manager.ecall(s.cpu.eid, "atk_echo", args, nonce,
                               tag);
    if (!first.isOk())
        return outcome("replay-ecall", false, "setup failed");
    auto replay = manager.ecall(s.cpu.eid, "atk_echo", args, nonce,
                                tag);
    bool blocked = replay.code() == ErrorCode::IntegrityViolation;
    return outcome("replay-ecall", blocked,
                   blocked ? "stale nonce rejected"
                           : "replay executed twice");
}

AttackOutcome
attackTamperEcallArgs()
{
    Scene s;
    Bytes args = toBytes("amount=1");
    uint64_t nonce = ++s.cpu.nonce;
    Bytes tag = EnclaveManager::authTag(s.cpu.secret, s.cpu.eid,
                                        nonce, "atk_echo", args);
    auto r = s.cpu.host->enclaveManager().ecall(
        s.cpu.eid, "atk_echo", toBytes("amount=9"), nonce, tag);
    bool blocked = r.code() == ErrorCode::AuthFailed;
    return outcome("tamper-ecall-args", blocked,
                   blocked ? "HMAC mismatch rejected"
                           : "modified arguments accepted");
}

AttackOutcome
attackMisdispatch()
{
    Scene s;
    auto npu_os = s.system.mosForDevice("npu0");
    if (!npu_os.isOk())
        return outcome("misdispatch", false, "no npu partition");
    s.system.dispatcher().setMisroute(
        [&](Eid) { return npu_os.value(); });
    auto r = s.system.ecall(s.cpu, "atk_echo", toBytes("x"));
    bool blocked = r.code() == ErrorCode::PermissionDenied;
    return outcome("misdispatch", blocked,
                   blocked ? "eid/partition mismatch rejected"
                           : "foreign partition served the call");
}

AttackOutcome
attackDropRpcByStall()
{
    Scene s;
    /* The malicious OS refuses to schedule the executor thread.
     * The caller's progress check observes no progress instead of
     * silently missing a request (drop becomes DoS, integrity
     * preserved). */
    auto rid = s.channel->callAsync(
        "cuMemAlloc", CudaRuntime::encodeMemAlloc(64));
    if (!rid.isOk())
        return outcome("drop-rpc-by-stall", false, "enqueue failed");
    auto premature = s.channel->resultOf(rid.value());
    bool blocked = premature.code() == ErrorCode::InvalidState;
    return outcome("drop-rpc-by-stall", blocked,
                   blocked ? "caller observes missing progress "
                             "(DoS only, no bad data)"
                           : "dropped RPC went unnoticed");
}

AttackOutcome
attackFabricatedAccelerator()
{
    Scene s;
    Bytes challenge = toBytes("fresh");
    auto report = s.system.attest(s.gpu, challenge);
    if (!report.isOk())
        return outcome("fabricated-accelerator", false,
                       "attestation path broken");
    auto expect = s.system.expectationFor(s.gpu);
    expect.challenge = challenge;
    /* The "vendor" endorsement comes from a fabricated key. */
    crypto::KeyPair fab = crypto::deriveKeyPair(toBytes("knockoff"));
    expect.deviceEndorsement = crypto::sign(
        fab.priv, report.value().report.devicePublicKey);
    Status v = verifyAttestation(report.value(), expect);
    bool blocked = v.code() == ErrorCode::AuthFailed;
    return outcome("fabricated-accelerator", blocked,
                   blocked ? "endorsement chain rejected"
                           : "fake accelerator attested");
}

AttackOutcome
attackMaliciousDeviceTree()
{
    Logger::instance().setQuiet(true);
    hw::Platform platform;
    tee::SecureMonitor monitor(platform);
    hw::DeviceTree dt;
    hw::DtNode real;
    real.name = "gpu0";
    real.compatible = "nvidia,sim";
    real.mmioBase = 0x1000;
    real.mmioSize = 0x1000;
    real.irq = 40;
    dt.addNode(real);
    hw::DtNode shadow = real;  /* MMIO remapping attack */
    shadow.name = "gpu0-shadow";
    shadow.irq = 41;
    dt.addNode(shadow);
    Status booted = monitor.boot(dt);
    bool blocked = !booted.isOk();
    return outcome("malicious-device-tree", blocked,
                   blocked ? "overlapping MMIO rejected at boot"
                           : "remapped MMIO accepted");
}

AttackOutcome
attackMosSubstitution()
{
    Scene s;
    /* Crash the GPU partition, recover it, and let the attacker
     * stand up a fresh enclave; the victim's stale channel and
     * secret must both be useless. */
    s.system.injectPanic("gpu0");
    auto stale = s.channel->call("cuMemAlloc",
                                 CudaRuntime::encodeMemAlloc(64));
    bool old_channel_dead = stale.code() == ErrorCode::PeerFailed;

    s.system.recover("gpu0");
    auto imposter = s.system.createEnclave(gpuManifest(),
                                           "atk.cubin", gpuImage());
    if (!imposter.isOk())
        return outcome("mos-substitution", false,
                       "recovery path broken");
    /* Victim reconnects with its OLD secret against the imposter:
     * dCheck must fail. */
    AppHandle forged = imposter.value();
    forged.secret = s.gpu.secret;
    auto rewire = s.system.connect(s.cpu, forged);
    bool dcheck_blocked = !rewire.isOk();
    bool blocked = old_channel_dead && dcheck_blocked;
    return outcome("mos-substitution", blocked,
                   blocked ? "trap + dCheck stopped the imposter"
                           : "victim talked to substituted mOS");
}

AttackOutcome
attackCrashLeak()
{
    Scene s;
    /* Load secret data into GPU VRAM, crash, recover, then scan
     * fresh allocations for residue. */
    auto va = s.channel->callSync("cuMemAlloc",
                                  CudaRuntime::encodeMemAlloc(4096));
    uint64_t gpu_va =
        CudaRuntime::decodeU64Result(va.value()).value();
    Bytes secret(4096, 0x5a);
    s.channel->call("cuMemcpyHtoD",
                    CudaRuntime::encodeMemcpyHtoD(gpu_va, secret));
    s.channel->drain();

    s.system.injectPanic("gpu0");
    s.system.recover("gpu0");

    auto scavenger = s.system.createEnclave(gpuManifest(),
                                            "atk.cubin", gpuImage());
    if (!scavenger.isOk())
        return outcome("crash-leak", false, "recovery path broken");
    auto channel2 = s.system.connect(s.cpu, scavenger.value());
    if (!channel2.isOk())
        return outcome("crash-leak", false, "reconnect broken");
    auto va2 = channel2.value()->callSync(
        "cuMemAlloc", CudaRuntime::encodeMemAlloc(4096));
    auto peek = channel2.value()->call(
        "cuMemcpyDtoH",
        CudaRuntime::encodeMemcpyDtoH(
            CudaRuntime::decodeU64Result(va2.value()).value(),
            4096));
    if (!peek.isOk())
        return outcome("crash-leak", false, "read-back broken");
    bool residue = false;
    for (uint8_t b : peek.value())
        residue |= (b == 0x5a);
    return outcome("crash-leak", !residue,
                   residue ? "crashed enclave data survived"
                           : "device scrubbed before restart");
}

AttackOutcome
attackDeadLockOnFailure()
{
    Scene s;
    tee::Spm &spm = s.system.spm();
    auto cpu_os = s.system.mosForDevice("cpu0").value();
    auto gpu_os = s.system.mosForDevice("gpu0").value();

    /* A lock page owned by the CPU partition, shared with GPU. */
    auto lock_page =
        cpu_os->shimKernel().allocPages(1);
    if (!lock_page.isOk())
        return outcome("deadlock-on-failure", false, "alloc failed");
    auto grant = spm.sharePages(cpu_os->partitionId(),
                                gpu_os->partitionId(),
                                lock_page.value(), 1);
    if (!grant.isOk())
        return outcome("deadlock-on-failure", false, "share failed");

    /* GPU side takes the lock, then its partition dies. */
    spm.write(gpu_os->partitionId(), lock_page.value(), Bytes{1});
    s.system.injectPanic("gpu0");

    /* The CPU side tries to take the lock: it must get a failure
     * signal, not spin forever. */
    Status lock = cpu_os->shimKernel().spinLock(lock_page.value());
    bool blocked = lock.code() == ErrorCode::PeerFailed;
    return outcome("deadlock-on-failure", blocked,
                   blocked ? "trap signal instead of deadlock"
                           : "caller stuck on dead lock holder");
}

AttackOutcome
attackUndeclaredCall()
{
    Scene s;
    auto r = s.system.ecall(s.cpu, "not_in_manifest", Bytes{});
    bool blocked = r.code() == ErrorCode::PermissionDenied;
    return outcome("undeclared-mecall", blocked,
                   blocked ? "static mECall list enforced"
                           : "arbitrary function invoked");
}

AttackOutcome
attackCrossContextGpuRead()
{
    Scene s;
    /* Victim data in one GPU context. */
    auto va = s.channel->callSync("cuMemAlloc",
                                  CudaRuntime::encodeMemAlloc(256));
    uint64_t victim_va =
        CudaRuntime::decodeU64Result(va.value()).value();
    Bytes secret(256, 0x77);
    s.channel->call("cuMemcpyHtoD",
                    CudaRuntime::encodeMemcpyHtoD(victim_va, secret));
    s.channel->drain();

    /* A second enclave (second GPU context) dereferences the
     * victim's VA. */
    auto attacker = s.system.createEnclave(gpuManifest(),
                                           "atk.cubin", gpuImage());
    auto channel2 = s.system.connect(s.cpu, attacker.value());
    auto read = channel2.value()->call(
        "cuMemcpyDtoH",
        CudaRuntime::encodeMemcpyDtoH(victim_va, 256));
    bool blocked = !read.isOk();
    return outcome("cross-context-gpu-read", blocked,
                   blocked ? "GPU VA isolation held"
                           : "foreign context memory read");
}

std::vector<AttackOutcome>
runAllAttacks()
{
    return {
        attackNormalWorldReadsSmem(),
        attackNormalWorldTampersSmem(),
        attackReplayEcall(),
        attackTamperEcallArgs(),
        attackMisdispatch(),
        attackDropRpcByStall(),
        attackFabricatedAccelerator(),
        attackMaliciousDeviceTree(),
        attackMosSubstitution(),
        attackCrashLeak(),
        attackDeadLockOnFailure(),
        attackUndeclaredCall(),
        attackCrossContextGpuRead(),
    };
}

} // namespace cronus::attacks
