/**
 * @file
 * Attack scenario suite (§III-B "in-scope attacks").
 *
 * Every attack the paper's threat model names is implemented as an
 * executable scenario against a fresh CRONUS instance. A scenario
 * *actually performs* the malicious action through the simulated
 * hardware/OS interfaces and reports whether the architecture
 * blocked it. The Table I bench and the security test suite are
 * built from these.
 */

#ifndef CRONUS_ATTACKS_ATTACKS_HH
#define CRONUS_ATTACKS_ATTACKS_HH

#include <string>
#include <vector>

namespace cronus::attacks
{

struct AttackOutcome
{
    std::string name;
    /** True if CRONUS prevented the attack. */
    bool blocked = false;
    /** What happened, for the report. */
    std::string detail;
};

/* Individual scenarios. Each builds its own CronusSystem. */

/** Untrusted OS reads the sRPC shared-memory ring. */
AttackOutcome attackNormalWorldReadsSmem();
/** Untrusted OS overwrites RPC metadata in the ring. */
AttackOutcome attackNormalWorldTampersSmem();
/** Replay of a recorded authenticated mECall. */
AttackOutcome attackReplayEcall();
/** mECall with attacker-modified arguments under the old tag. */
AttackOutcome attackTamperEcallArgs();
/** Dispatcher routes the request to the wrong partition. */
AttackOutcome attackMisdispatch();
/** Attacker drops RPCs by never scheduling the executor. */
AttackOutcome attackDropRpcByStall();
/** Fabricated accelerator without a vendor-endorsed RoT key. */
AttackOutcome attackFabricatedAccelerator();
/** Malicious device tree (overlapping MMIO windows). */
AttackOutcome attackMaliciousDeviceTree();
/** TOCTOU: crash the callee partition and substitute a fresh
 *  enclave under the same eid. */
AttackOutcome attackMosSubstitution();
/** Crashed-information leak: read device + memory after restart. */
AttackOutcome attackCrashLeak();
/** Deadlock: peer dies while holding a shared-memory spinlock. */
AttackOutcome attackDeadLockOnFailure();
/** Malicious enclave calls an mECall outside its manifest. */
AttackOutcome attackUndeclaredCall();
/** One enclave's GPU kernel reaches into another context's VRAM. */
AttackOutcome attackCrossContextGpuRead();

/** Run every scenario. */
std::vector<AttackOutcome> runAllAttacks();

} // namespace cronus::attacks

#endif // CRONUS_ATTACKS_ATTACKS_HH
