#include "platform.hh"

#include "base/logging.hh"
#include "obs/trace.hh"

namespace cronus::hw
{

Platform::Platform(const PlatformConfig &config)
    : cfg(config),
      memory(config.normalMemBytes + config.secureMemBytes),
      rot(config.rotSeed)
{
    Status s = addressController.addRegion(
        MemRegion{"normal-dram", normalBase(), normalSize(),
                  World::Normal},
        World::Secure);
    CRONUS_ASSERT(s.isOk(), "normal region setup: " + s.toString());
    s = addressController.addRegion(
        MemRegion{"secure-dram", secureBase(), secureSize(),
                  World::Secure},
        World::Secure);
    CRONUS_ASSERT(s.isOk(), "secure region setup: " + s.toString());
    bytesCopied = &statGroup.counter("bus_bytes_copied");
    /* Register the virtual clock so the tracer can stamp events in
     * virtual time (it only reads the clock -- zero cost charged).
     * With an external (fleet-shared) clock configured, that is the
     * clock events must be stamped from. */
    obs::Tracer::instance().attachClock(&clock());
}

Platform::~Platform()
{
    obs::Tracer::instance().detachClock(&clock());
}

Status
Platform::busRead(World from, PhysAddr addr, uint8_t *out,
                  uint64_t len)
{
    Status s = classifyAccess(from, addr, len, false);
    if (!s.isOk())
        return s;
    if (busObserver)
        busObserver(from, addr, len, false);
    bytesCopied->inc(len);
    return memory.read(addr, out, len);
}

Status
Platform::busWrite(World from, PhysAddr addr, const uint8_t *data,
                   uint64_t len)
{
    Status s = classifyAccess(from, addr, len, true);
    if (!s.isOk())
        return s;
    if (busObserver)
        busObserver(from, addr, len, true);
    bytesCopied->inc(len);
    return memory.write(addr, data, len);
}

MemSpan
Platform::busBorrow(World from, PhysAddr addr, uint64_t len,
                    bool is_write, Status *fault)
{
    if (fault)
        *fault = Status::ok();
    uint64_t off = addr & (kPageSize - 1);
    if (len == 0 || off + len > kPageSize)
        return MemSpan{};
    Status s = classifyAccess(from, addr, len, is_write);
    if (!s.isOk()) {
        if (fault)
            *fault = s;
        return MemSpan{};
    }
    if (busObserver)
        busObserver(from, addr, len, is_write);
    return memory.borrow(addr, len);
}

Result<Bytes>
Platform::busRead(World from, PhysAddr addr, uint64_t len)
{
    Bytes out(len);
    Status s = busRead(from, addr, out.data(), len);
    if (!s.isOk())
        return s;
    return out;
}

Status
Platform::busWrite(World from, PhysAddr addr, const Bytes &data)
{
    return busWrite(from, addr, data.data(), data.size());
}

Result<Device *>
Platform::accessDevice(const std::string &name, World from)
{
    auto it = devices.find(name);
    if (it == devices.end())
        return Status(ErrorCode::NotFound,
                      "no device '" + name + "'");
    Status s = protectionController.checkAccess(name, from);
    if (!s.isOk()) {
        statGroup.counter("tzpc_faults").inc();
        return s;
    }
    return it->second.get();
}

Status
Platform::dmaRead(const Device &dev, PhysAddr addr, uint8_t *out,
                  uint64_t len)
{
    World dev_world = protectionController.deviceWorld(dev.name());
    if (systemMmu.hasStream(dev.streamId())) {
        Translation t = systemMmu.translate(dev.streamId(), addr, len,
                                            false);
        if (!t.ok()) {
            statGroup.counter("smmu_faults").inc();
            return Status(ErrorCode::AccessFault,
                          "SMMU fault on DMA read");
        }
        addr = t.phys;
    }
    if (dev_world == World::Secure &&
        !addressController.isSecure(addr, len)) {
        statGroup.counter("dma_confinement_faults").inc();
        return Status(ErrorCode::AccessFault,
                      "secure-bus DMA outside secure memory");
    }
    Status s = classifyAccess(dev_world, addr, len, false);
    if (!s.isOk())
        return s;
    chargeDma(len);
    return memory.read(addr, out, len);
}

Status
Platform::dmaWrite(const Device &dev, PhysAddr addr,
                   const uint8_t *data, uint64_t len)
{
    World dev_world = protectionController.deviceWorld(dev.name());
    if (systemMmu.hasStream(dev.streamId())) {
        Translation t = systemMmu.translate(dev.streamId(), addr, len,
                                            true);
        if (!t.ok()) {
            statGroup.counter("smmu_faults").inc();
            return Status(ErrorCode::AccessFault,
                          "SMMU fault on DMA write");
        }
        addr = t.phys;
    }
    if (dev_world == World::Secure &&
        !addressController.isSecure(addr, len)) {
        statGroup.counter("dma_confinement_faults").inc();
        return Status(ErrorCode::AccessFault,
                      "secure-bus DMA outside secure memory");
    }
    Status s = classifyAccess(dev_world, addr, len, true);
    if (!s.isOk())
        return s;
    chargeDma(len);
    return memory.write(addr, data, len);
}

Device *
Platform::registerDevice(std::unique_ptr<Device> dev, uint32_t irq)
{
    CRONUS_ASSERT(devices.count(dev->name()) == 0,
                  "duplicate device '" + dev->name() + "'");
    dev->stream = nextStream++;
    dev->irqLine = irq;
    dev->platform = this;
    mmioBases[dev->name()] = nextMmioBase;
    nextMmioBase += pageAlignUp(dev->mmioSize());
    Device *raw = dev.get();
    devices.emplace(raw->name(), std::move(dev));
    return raw;
}

Device *
Platform::findDevice(const std::string &name)
{
    auto it = devices.find(name);
    return it == devices.end() ? nullptr : it->second.get();
}

const Device *
Platform::findDevice(const std::string &name) const
{
    auto it = devices.find(name);
    return it == devices.end() ? nullptr : it->second.get();
}

DeviceTree
Platform::buildDeviceTree() const
{
    DeviceTree dt;
    for (const auto &[name, dev] : devices) {
        DtNode node;
        node.name = name;
        node.compatible = dev->compatible();
        node.mmioBase = mmioBases.at(name);
        node.mmioSize = dev->mmioSize();
        node.irq = dev->irq();
        node.world = protectionController.deviceWorld(name);
        node.memBytes = dev->memoryBytes();
        dt.addNode(node);
    }
    return dt;
}

void
Platform::lockDown()
{
    addressController.lockDown();
    protectionController.lockDown();
}

void
Platform::chargeMemcpy(uint64_t bytes)
{
    clock().advance(
        static_cast<SimTime>(bytes * costModel.memcpyNsPerByte));
}

void
Platform::chargeDma(uint64_t bytes)
{
    clock().advance(
        static_cast<SimTime>(bytes * costModel.dmaNsPerByte));
}

} // namespace cronus::hw
