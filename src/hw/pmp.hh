/**
 * @file
 * RISC-V Physical Memory Protection (PMP) model.
 *
 * §VII-A: CRONUS applies directly to TEEs built on RISC-V PMP --
 * partition isolation maps to per-hart PMP configurations, SecureIO
 * to PMP entries over device MMIO, and shared TEE memory to
 * overlapped PMP configurations. This module models the PMP unit
 * (16 entries, priority-ordered, NA4/NAPOT/TOR address matching,
 * lockable entries) and an adapter that derives a partition's PMP
 * configuration from the same region descriptions the SPM uses, so
 * tests can show the stage-2-based isolation outcomes and the
 * PMP-based ones agree.
 */

#ifndef CRONUS_HW_PMP_HH
#define CRONUS_HW_PMP_HH

#include <array>
#include <vector>

#include "base/status.hh"
#include "types.hh"

namespace cronus::hw
{

/** PMP address-matching mode. */
enum class PmpMode : uint8_t
{
    Off,
    Tor,    ///< top-of-range: [prev entry addr, this addr)
    Na4,    ///< naturally aligned 4-byte region
    Napot,  ///< naturally aligned power-of-two region >= 8 bytes
};

enum class PmpAccess : uint8_t
{
    Read,
    Write,
    Exec,
};

/** One pmpcfg/pmpaddr pair (decoded form). */
struct PmpEntry
{
    PmpMode mode = PmpMode::Off;
    /** Encoded pmpaddr value (address >> 2, NAPOT-encoded). */
    uint64_t addr = 0;
    bool read = false;
    bool write = false;
    bool exec = false;
    /** Locked entries cannot be reconfigured until reset. */
    bool locked = false;
};

class Pmp
{
  public:
    static constexpr size_t kEntries = 16;

    /** NAPOT-encode a region (base/size must be power-of-two
     *  aligned, size >= 8). */
    static Result<uint64_t> napotEncode(PhysAddr base,
                                        uint64_t size);
    /** Decode a NAPOT pmpaddr into (base, size). */
    static std::pair<PhysAddr, uint64_t> napotDecode(uint64_t addr);

    /** Program entry @p index. Fails on locked entries. */
    Status configure(size_t index, const PmpEntry &entry);

    /** Clear all non-locked entries. */
    void reset();

    /**
     * Check an access. The lowest-numbered matching entry decides;
     * with no match the access fails (S/U-mode semantics).
     */
    Status check(PhysAddr addr, uint64_t len, PmpAccess access) const;

    const PmpEntry &entry(size_t index) const;

  private:
    /** Matching range of an entry given its predecessor. */
    bool matches(size_t index, PhysAddr addr, uint64_t len) const;

    std::array<PmpEntry, kEntries> entries{};
};

/** A memory region a partition may access (the SPM's view). */
struct PmpRegion
{
    PhysAddr base = 0;
    uint64_t size = 0;  ///< power-of-two, >= 8
    bool write = true;
};

/**
 * Derive a PMP configuration granting exactly @p regions.
 * Demonstrates the §VII-A mapping: partition-private memory and
 * shared grants become NAPOT entries; everything else is denied by
 * the no-match default.
 */
Result<Pmp> pmpForPartition(const std::vector<PmpRegion> &regions);

} // namespace cronus::hw

#endif // CRONUS_HW_PMP_HH
