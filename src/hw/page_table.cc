#include "page_table.hh"

namespace cronus::hw
{

Status
PageTable::map(VirtAddr va, PhysAddr pa, PagePerms perms,
               uint64_t share_tag)
{
    if (!isPageAligned(va) || !isPageAligned(pa))
        return Status(ErrorCode::InvalidArgument,
                      "map requires page-aligned addresses");
    uint64_t idx = va >> kPageShift;
    auto it = entries.find(idx);
    if (it != entries.end() && it->second.valid)
        return Status(ErrorCode::InvalidState,
                      "page already mapped");
    entries[idx] = PageEntry{pa, perms, true, share_tag};
    return Status::ok();
}

Status
PageTable::unmap(VirtAddr va)
{
    uint64_t idx = va >> kPageShift;
    if (entries.erase(idx) == 0)
        return Status(ErrorCode::NotFound, "page not mapped");
    return Status::ok();
}

Status
PageTable::invalidate(VirtAddr va)
{
    uint64_t idx = va >> kPageShift;
    auto it = entries.find(idx);
    if (it == entries.end())
        return Status(ErrorCode::NotFound, "page not mapped");
    it->second.valid = false;
    return Status::ok();
}

Status
PageTable::revalidate(VirtAddr va)
{
    uint64_t idx = va >> kPageShift;
    auto it = entries.find(idx);
    if (it == entries.end())
        return Status(ErrorCode::NotFound, "page not mapped");
    it->second.valid = true;
    return Status::ok();
}

Translation
PageTable::translate(VirtAddr va, uint64_t len, bool write) const
{
    if (len == 0)
        len = 1;
    uint64_t first = va >> kPageShift;
    uint64_t last = (va + len - 1) >> kPageShift;
    PhysAddr phys = 0;
    for (uint64_t idx = first; idx <= last; ++idx) {
        auto it = entries.find(idx);
        if (it == entries.end())
            return Translation{0, FaultKind::Unmapped};
        const PageEntry &entry = it->second;
        if (!entry.valid)
            return Translation{0, FaultKind::Invalidated};
        if (write ? !entry.perms.write : !entry.perms.read)
            return Translation{0, FaultKind::Permission};
        if (idx == first)
            phys = entry.phys + (va & (kPageSize - 1));
        else if (entry.phys !=
                 entries.at(idx - 1).phys + kPageSize)
            /* Access must be physically contiguous to be a single
             * bus transaction in this model. */
            return Translation{0, FaultKind::Unmapped};
    }
    return Translation{phys, FaultKind::None};
}

size_t
PageTable::invalidateByTag(uint64_t share_tag)
{
    size_t count = 0;
    for (auto &[idx, entry] : entries) {
        if (entry.shareTag == share_tag && entry.valid) {
            entry.valid = false;
            ++count;
        }
    }
    return count;
}

size_t
PageTable::unmapByTag(uint64_t share_tag)
{
    size_t count = 0;
    for (auto it = entries.begin(); it != entries.end();) {
        if (it->second.shareTag == share_tag) {
            it = entries.erase(it);
            ++count;
        } else {
            ++it;
        }
    }
    return count;
}

void
PageTable::forEach(const std::function<void(VirtAddr,
                                            const PageEntry &)> &fn) const
{
    for (const auto &[idx, entry] : entries)
        fn(idx << kPageShift, entry);
}

bool
PageTable::isMapped(VirtAddr va) const
{
    return entries.count(va >> kPageShift) > 0;
}

std::optional<PageEntry>
PageTable::lookup(VirtAddr va) const
{
    auto it = entries.find(va >> kPageShift);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

} // namespace cronus::hw
