#include "page_table.hh"

#include "obs/trace.hh"

namespace cronus::hw
{

namespace
{

/** Instant "tlb.evict" on the shared tlb track (tag-wide eviction
 *  sweeps; the per-partition shootdown spans live in the SPM). */
void
noteTagEviction(const char *kind, uint64_t share_tag, size_t count)
{
    auto &tr = obs::Tracer::instance();
    if (!tr.active() || count == 0)
        return;
    JsonObject args;
    args["kind"] = kind;
    args["tag"] = static_cast<int64_t>(share_tag);
    args["entries"] = static_cast<int64_t>(count);
    tr.instant(tr.track("tlb"), "tlb.evict", "tlb",
               std::move(args));
}

} // namespace

Status
PageTable::map(VirtAddr va, PhysAddr pa, PagePerms perms,
               uint64_t share_tag)
{
    if (!isPageAligned(va) || !isPageAligned(pa))
        return Status(ErrorCode::InvalidArgument,
                      "map requires page-aligned addresses");
    uint64_t idx = va >> kPageShift;
    auto it = entries.find(idx);
    if (it != entries.end() && it->second.valid)
        return Status(ErrorCode::InvalidState,
                      "page already mapped");
    entries[idx] = PageEntry{pa, perms, true, share_tag};
    /* The page's translation (phys/perms) may have changed. */
    tlb.evictPage(idx);
    return Status::ok();
}

Status
PageTable::unmap(VirtAddr va)
{
    uint64_t idx = va >> kPageShift;
    if (entries.erase(idx) == 0)
        return Status(ErrorCode::NotFound, "page not mapped");
    tlb.evictPage(idx);
    return Status::ok();
}

Status
PageTable::invalidate(VirtAddr va)
{
    uint64_t idx = va >> kPageShift;
    auto it = entries.find(idx);
    if (it == entries.end())
        return Status(ErrorCode::NotFound, "page not mapped");
    it->second.valid = false;
    tlb.evictPage(idx);
    return Status::ok();
}

Status
PageTable::revalidate(VirtAddr va)
{
    uint64_t idx = va >> kPageShift;
    auto it = entries.find(idx);
    if (it == entries.end())
        return Status(ErrorCode::NotFound, "page not mapped");
    it->second.valid = true;
    /* No eviction needed: faults are never cached, so a stale miss
     * simply re-walks and sees the revalidated entry. */
    return Status::ok();
}

Translation
PageTable::translate(VirtAddr va, uint64_t len, bool write) const
{
    if (len == 0)
        len = 1;
    uint64_t first = va >> kPageShift;
    uint64_t last = (va + len - 1) >> kPageShift;

    /* Fast path: single-page access through the software TLB. Only
     * valid translations are cached, so a hit can at most differ on
     * permissions, which are stored (and re-checked) per entry. */
    if (first == last && TranslationCache::globalEnable()) {
        PhysAddr phys_page = 0;
        PagePerms perms;
        if (tlb.lookup(first, phys_page, perms)) {
            if (write ? !perms.write : !perms.read)
                return Translation{0, FaultKind::Permission, va};
            return Translation{phys_page + (va & (kPageSize - 1)),
                               FaultKind::None};
        }
    }

    /* Slow path: walk each covered page exactly once. Pages are
     * consecutive map keys, so after finding the first entry the
     * rest are reached by iterator increment; a key gap is an
     * unmapped page. */
    auto it = entries.find(first);
    PhysAddr phys = 0;
    PhysAddr prev_phys = 0;
    for (uint64_t idx = first; idx <= last; ++idx) {
        VirtAddr fault_va = idx == first ? va : (idx << kPageShift);
        if (it == entries.end() || it->first != idx)
            return Translation{0, FaultKind::Unmapped, fault_va};
        const PageEntry &entry = it->second;
        if (!entry.valid)
            return Translation{0, FaultKind::Invalidated, fault_va};
        if (write ? !entry.perms.write : !entry.perms.read)
            return Translation{0, FaultKind::Permission, fault_va};
        if (idx == first) {
            phys = entry.phys + (va & (kPageSize - 1));
        } else if (entry.phys != prev_phys + kPageSize) {
            /* Access must be physically contiguous to be a single
             * bus transaction in this model. */
            return Translation{0, FaultKind::Unmapped, fault_va};
        }
        prev_phys = entry.phys;
        if (idx == first && idx == last &&
            TranslationCache::globalEnable())
            tlb.fill(idx, entry.phys, entry.perms);
        ++it;
    }
    return Translation{phys, FaultKind::None};
}

size_t
PageTable::invalidateByTag(uint64_t share_tag)
{
    size_t count = 0;
    for (auto &[idx, entry] : entries) {
        if (entry.shareTag == share_tag && entry.valid) {
            entry.valid = false;
            tlb.evictPage(idx);
            ++count;
        }
    }
    noteTagEviction("invalidate", share_tag, count);
    return count;
}

size_t
PageTable::unmapByTag(uint64_t share_tag)
{
    size_t count = 0;
    for (auto it = entries.begin(); it != entries.end();) {
        if (it->second.shareTag == share_tag) {
            tlb.evictPage(it->first);
            it = entries.erase(it);
            ++count;
        } else {
            ++it;
        }
    }
    noteTagEviction("unmap", share_tag, count);
    return count;
}

void
PageTable::forEach(const std::function<void(VirtAddr,
                                            const PageEntry &)> &fn) const
{
    for (const auto &[idx, entry] : entries)
        fn(idx << kPageShift, entry);
}

bool
PageTable::isMapped(VirtAddr va) const
{
    return entries.count(va >> kPageShift) > 0;
}

std::optional<PageEntry>
PageTable::lookup(VirtAddr va) const
{
    auto it = entries.find(va >> kPageShift);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

} // namespace cronus::hw
