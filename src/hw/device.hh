/**
 * @file
 * Base class for simulated PCIe devices (accelerators, RoT, ...).
 */

#ifndef CRONUS_HW_DEVICE_HH
#define CRONUS_HW_DEVICE_HH

#include <cstdint>
#include <string>

#include "base/status.hh"
#include "types.hh"

namespace cronus::hw
{

class Platform;

/**
 * A device on the (secure) PCIe bus. Registers are exposed through a
 * small MMIO window; bulk data moves by DMA through the bus, which
 * applies SMMU and TZASC checks.
 */
class Device
{
  public:
    Device(std::string device_name, std::string compat,
           uint64_t mmio_size)
        : devName(std::move(device_name)),
          devCompatible(std::move(compat)), mmioWindow(mmio_size) {}

    virtual ~Device() = default;

    const std::string &name() const { return devName; }
    const std::string &compatible() const { return devCompatible; }
    uint64_t mmioSize() const { return mmioWindow; }
    StreamId streamId() const { return stream; }
    uint32_t irq() const { return irqLine; }

    /** Register-style MMIO access. */
    virtual Result<uint64_t> mmioRead(uint64_t offset) = 0;
    virtual Status mmioWrite(uint64_t offset, uint64_t value) = 0;

    /**
     * Reset device state. @p clear_memory additionally scrubs all
     * device-local memory (the failover A3 defense clears device
     * content before reloading an mOS).
     */
    virtual void reset(bool clear_memory) = 0;

    /** Bytes of device-local memory (VRAM etc.); 0 if none. */
    virtual uint64_t memoryBytes() const { return 0; }

  protected:
    friend class Platform;

    std::string devName;
    std::string devCompatible;
    uint64_t mmioWindow;
    StreamId stream = 0;
    uint32_t irqLine = 0;
    Platform *platform = nullptr;
};

} // namespace cronus::hw

#endif // CRONUS_HW_DEVICE_HH
