#include "tzasc.hh"

namespace cronus::hw
{

Status
Tzasc::addRegion(const MemRegion &region, World configurator)
{
    if (configurator != World::Secure)
        return Status(ErrorCode::PermissionDenied,
                      "TZASC programmable only from secure world");
    if (locked)
        return Status(ErrorCode::InvalidState,
                      "TZASC configuration locked");
    if (region.size == 0)
        return Status(ErrorCode::InvalidArgument,
                      "zero-sized TZASC region");
    for (const auto &existing : regionList) {
        if (existing.overlaps(region))
            return Status(ErrorCode::InvalidArgument,
                          "TZASC region '" + region.name +
                          "' overlaps '" + existing.name + "'");
    }
    regionList.push_back(region);
    return Status::ok();
}

Status
Tzasc::checkAccess(PhysAddr addr, uint64_t len, World from) const
{
    if (from == World::Secure)
        return Status::ok();
    /* Normal world: fault on any byte inside a secure region. */
    for (const auto &region : regionList) {
        if (region.world != World::Secure)
            continue;
        if (addr < region.base + region.size &&
            region.base < addr + len) {
            return Status(ErrorCode::AccessFault,
                          "normal-world access to secure region '" +
                          region.name + "'");
        }
    }
    return Status::ok();
}

bool
Tzasc::isSecure(PhysAddr addr, uint64_t len) const
{
    for (const auto &region : regionList) {
        if (region.world == World::Secure &&
            region.contains(addr, len))
            return true;
    }
    return false;
}

const MemRegion *
Tzasc::findRegion(PhysAddr addr) const
{
    for (const auto &region : regionList) {
        if (region.contains(addr, 1))
            return &region;
    }
    return nullptr;
}

Status
Tzpc::assignDevice(const std::string &device, World world,
                   World configurator)
{
    if (configurator != World::Secure)
        return Status(ErrorCode::PermissionDenied,
                      "TZPC programmable only from secure world");
    if (locked)
        return Status(ErrorCode::InvalidState,
                      "TZPC configuration locked");
    assignment[device] = world;
    return Status::ok();
}

Status
Tzpc::checkAccess(const std::string &device, World from) const
{
    if (from == World::Secure)
        return Status::ok();
    auto it = assignment.find(device);
    World device_world =
        it == assignment.end() ? World::Normal : it->second;
    if (device_world == World::Secure)
        return Status(ErrorCode::AccessFault,
                      "normal-world access to secure device '" +
                      device + "'");
    return Status::ok();
}

World
Tzpc::deviceWorld(const std::string &device) const
{
    auto it = assignment.find(device);
    return it == assignment.end() ? World::Normal : it->second;
}

} // namespace cronus::hw
