/**
 * @file
 * The simulated machine: DRAM + TZASC/TZPC + SMMU + secure PCIe bus
 * + devices + root of trust, with a shared virtual clock.
 *
 * Stands in for the paper's QEMU AArch64 machine (Table II): separate
 * MemRegions for the normal and secure world, an emulated TZC-400,
 * and a "secure" PCIe bus whose devices may DMA only into secure
 * memory.
 */

#ifndef CRONUS_HW_PLATFORM_HH
#define CRONUS_HW_PLATFORM_HH

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "base/sim_clock.hh"
#include "base/stats.hh"
#include "device.hh"
#include "device_tree.hh"
#include "phys_memory.hh"
#include "root_of_trust.hh"
#include "smmu.hh"
#include "tzasc.hh"

namespace cronus::hw
{

/** Static machine configuration. */
struct PlatformConfig
{
    uint64_t normalMemBytes = 256ull << 20;
    uint64_t secureMemBytes = 128ull << 20;
    Bytes rotSeed = {'p', 'l', 'a', 't', 'f', 'o', 'r', 'm'};
    /**
     * When set, this platform charges virtual time against the given
     * clock instead of its own member clock. A multi-SoC Cluster
     * points every node at one fleet clock so cross-node timelines
     * stay totally ordered; single-node users leave it null and the
     * platform behaves exactly as before (the member clock is then
     * the effective clock). The pointee must outlive the Platform.
     */
    SimClock *externalClock = nullptr;
};

class Platform
{
  public:
    explicit Platform(const PlatformConfig &config = PlatformConfig());
    ~Platform();
    Platform(const Platform &) = delete;
    Platform &operator=(const Platform &) = delete;

    /* --- memory map --- */
    PhysAddr normalBase() const { return 0; }
    uint64_t normalSize() const { return cfg.normalMemBytes; }
    PhysAddr secureBase() const { return cfg.normalMemBytes; }
    uint64_t secureSize() const { return cfg.secureMemBytes; }

    /* --- checked DRAM access (applies TZASC filtering) --- */
    Status busRead(World from, PhysAddr addr, uint8_t *out,
                   uint64_t len);
    Status busWrite(World from, PhysAddr addr, const uint8_t *data,
                    uint64_t len);
    Result<Bytes> busRead(World from, PhysAddr addr, uint64_t len);
    Status busWrite(World from, PhysAddr addr, const Bytes &data);

    /**
     * Borrow a zero-copy window into DRAM, with the same TZASC
     * filtering and bus-observer visibility as a copying access.
     * Returns a null span if the range crosses a page boundary (the
     * caller falls back to the copy path) or fails the TZASC check.
     * @p is_write selects the access kind the observer sees; a span
     * intended for writing must be borrowed with is_write = true.
     */
    MemSpan busBorrow(World from, PhysAddr addr, uint64_t len,
                      bool is_write, Status *fault = nullptr);

    /**
     * Bookkeeping for a software-TLB fast-path access: fires the bus
     * observer and byte counter exactly as busRead/busWrite would.
     * The SPM uses this when a TLB hit with an annotated host page
     * lets it copy directly; the TZASC check is elided because it is
     * unconditional for secure-world accesses, the only traffic the
     * fast path carries.
     */
    void
    noteFastPathAccess(World from, PhysAddr addr, uint64_t len,
                       bool is_write)
    {
        if (busObserver)
            busObserver(from, addr, len, is_write);
        bytesCopied->inc(len);
    }

    /* --- checked device access (applies TZPC gating) --- */
    Result<Device *> accessDevice(const std::string &name, World from);

    /**
     * Device DMA to/from DRAM: translated by the SMMU when a stream
     * table exists, then TZASC-checked with the device's assigned
     * world. Secure-bus devices are additionally confined to secure
     * memory (the paper's QEMU PCIe modification).
     */
    Status dmaRead(const Device &dev, PhysAddr addr, uint8_t *out,
                   uint64_t len);
    Status dmaWrite(const Device &dev, PhysAddr addr,
                    const uint8_t *data, uint64_t len);

    /* --- construction --- */
    Device *registerDevice(std::unique_ptr<Device> dev, uint32_t irq);
    Device *findDevice(const std::string &name);
    const Device *findDevice(const std::string &name) const;

    /** Build a DT describing the registered devices. */
    DeviceTree buildDeviceTree() const;

    /** Finish secure boot: lock TZASC/TZPC configuration. */
    void lockDown();

    /* --- unchecked accessors (secure monitor / test introspection) */
    PhysicalMemory &dram() { return memory; }
    Tzasc &tzasc() { return addressController; }
    Tzpc &tzpc() { return protectionController; }
    Smmu &smmu() { return systemMmu; }
    RootOfTrust &rootOfTrust() { return rot; }
    VendorRegistry &vendors() { return vendorRegistry; }

    SimClock &clock() { return cfg.externalClock ? *cfg.externalClock
                                                 : simClock; }
    const CostModel &costs() const { return costModel; }
    /** Mutable cost model for what-if experiments (e.g. the §VII-B
     *  hardware-assisted trusted-shared-memory ablation). */
    CostModel &mutableCosts() { return costModel; }
    StatGroup &stats() { return statGroup; }

    /** Charge virtual time for a CPU memcpy of @p bytes. */
    void chargeMemcpy(uint64_t bytes);
    /** Charge virtual time for a DMA of @p bytes. */
    void chargeDma(uint64_t bytes);

    /**
     * Observe every checked bus access that passed TZASC filtering,
     * before the memory operation executes. Used by the fault
     * injector (virtual-time triggers, clock skew) and by tracing;
     * the observer must not issue bus accesses itself.
     */
    using BusObserver =
        std::function<void(World from, PhysAddr addr, uint64_t len,
                           bool is_write)>;
    void setBusObserver(BusObserver observer)
    {
        busObserver = std::move(observer);
    }

    /**
     * Replace the TZASC as the bus access classifier. Installed by
     * isolation backends whose substrate has no TZASC (the RISC-V
     * PMP backend classifies untrusted traffic with a locked
     * machine-level PMP instead); when unset, the TZASC decides --
     * the default TrustZone path is untouched. Denials are counted
     * by the filter's owner, not by `tzasc_faults`.
     */
    using BusFilter = std::function<Status(
        World from, PhysAddr addr, uint64_t len, bool is_write)>;
    void setBusFilter(BusFilter filter)
    {
        busFilter = std::move(filter);
    }
    void clearBusFilter() { busFilter = nullptr; }

  private:
    /** TZASC check, or the installed backend filter. */
    Status
    classifyAccess(World from, PhysAddr addr, uint64_t len,
                   bool is_write)
    {
        if (busFilter)
            return busFilter(from, addr, len, is_write);
        Status s = addressController.checkAccess(addr, len, from);
        if (!s.isOk())
            statGroup.counter("tzasc_faults").inc();
        return s;
    }

    PlatformConfig cfg;
    PhysicalMemory memory;
    Tzasc addressController;
    Tzpc protectionController;
    Smmu systemMmu;
    RootOfTrust rot;
    VendorRegistry vendorRegistry;
    SimClock simClock;
    CostModel costModel;
    StatGroup statGroup;

    BusObserver busObserver;
    BusFilter busFilter;
    /* Cached so the hot path skips the StatGroup map lookup. */
    Counter *bytesCopied = nullptr;
    std::map<std::string, std::unique_ptr<Device>> devices;
    std::map<std::string, PhysAddr> mmioBases;
    PhysAddr nextMmioBase = 1ull << 40;
    StreamId nextStream = 1;
};

} // namespace cronus::hw

#endif // CRONUS_HW_PLATFORM_HH
