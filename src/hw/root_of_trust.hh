/**
 * @file
 * Hardware root of trust: a device holding a ROM-fused private key.
 *
 * The platform RoT signs attestation-key endorsements (§IV-A); each
 * accelerator also embeds its own RoT so the mOS can verify hardware
 * authenticity (PubK_acc endorsed by the vendor).
 */

#ifndef CRONUS_HW_ROOT_OF_TRUST_HH
#define CRONUS_HW_ROOT_OF_TRUST_HH

#include <map>
#include <string>

#include "base/bytes.hh"
#include "crypto/keys.hh"

namespace cronus::hw
{

class RootOfTrust
{
  public:
    /** @p seed models the ROM-fused secret. */
    explicit RootOfTrust(const Bytes &seed)
        : keys(crypto::deriveKeyPair(seed)) {}

    const crypto::PublicKey &publicKey() const { return keys.pub; }

    /**
     * Sign @p message with the fused key. Only callable from the
     * secure side in the real hardware; the simulation enforces that
     * at the call sites (secure monitor / device firmware).
     */
    crypto::Signature sign(const Bytes &message) const
    {
        return crypto::sign(keys.priv, message);
    }

  private:
    crypto::KeyPair keys;
};

/**
 * A vendor endorsement registry standing in for the accelerator
 * vendors' PKI: clients check that an accelerator's PubK_acc is
 * endorsed by a known vendor key.
 */
class VendorRegistry
{
  public:
    /** Register a vendor key (e.g. "nvidia"). */
    void addVendor(const std::string &vendor,
                   const crypto::PublicKey &key);

    /** Endorsement = vendor signature over the device public key. */
    Result<crypto::Signature> endorse(
        const std::string &vendor,
        const crypto::PrivateKey &vendor_key,
        const crypto::PublicKey &device_key) const;

    /** Verify that @p device_key carries a valid endorsement. */
    bool verifyEndorsement(const std::string &vendor,
                           const crypto::PublicKey &device_key,
                           const crypto::Signature &endorsement) const;

  private:
    std::map<std::string, crypto::PublicKey> vendors;
};

} // namespace cronus::hw

#endif // CRONUS_HW_ROOT_OF_TRUST_HH
