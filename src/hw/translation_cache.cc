#include "translation_cache.hh"

#include <cstdlib>

namespace cronus::hw
{

namespace
{

/* -1 unresolved, 0 disabled, 1 enabled. Resolved lazily so tests
 * and benches can override before or after first use. */
int gTlbEnabled = -1;

bool
envDisablesTlb()
{
    const char *v = std::getenv("CRONUS_DISABLE_TLB");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

} // namespace

bool
TranslationCache::globalEnable()
{
    if (gTlbEnabled < 0)
        gTlbEnabled = envDisablesTlb() ? 0 : 1;
    return gTlbEnabled == 1;
}

void
TranslationCache::setGlobalEnable(bool on)
{
    gTlbEnabled = on ? 1 : 0;
}

TranslationCache::TranslationCache(size_t sets)
    : slots(sets == 0 ? kDefaultSets : sets)
{
}

bool
TranslationCache::lookup(uint64_t page_idx, PhysAddr &phys_page,
                         PagePerms &perms) const
{
    if (!globalEnable())
        return false;
    const Entry &e = slots[page_idx % slots.size()];
    if (e.epoch != epoch || e.tag != page_idx) {
        ++stats.misses;
        return false;
    }
    ++stats.hits;
    phys_page = e.physPage;
    perms = e.perms;
    return true;
}

bool
TranslationCache::lookup(uint64_t page_idx, PhysAddr &phys_page,
                         PagePerms &perms, uint8_t *&host) const
{
    if (!globalEnable())
        return false;
    const Entry &e = slots[page_idx % slots.size()];
    if (e.epoch != epoch || e.tag != page_idx) {
        ++stats.misses;
        return false;
    }
    ++stats.hits;
    phys_page = e.physPage;
    perms = e.perms;
    host = e.host;
    return true;
}

void
TranslationCache::fill(uint64_t page_idx, PhysAddr phys_page,
                       PagePerms perms)
{
    if (!globalEnable())
        return;
    Entry &e = slots[page_idx % slots.size()];
    e.tag = page_idx;
    e.physPage = phys_page;
    e.host = nullptr;
    e.perms = perms;
    e.epoch = epoch;
    ++stats.fills;
}

void
TranslationCache::annotateHost(uint64_t page_idx, uint8_t *host)
{
    Entry &e = slots[page_idx % slots.size()];
    if (e.epoch == epoch && e.tag == page_idx)
        e.host = host;
}

void
TranslationCache::evictPage(uint64_t page_idx)
{
    Entry &e = slots[page_idx % slots.size()];
    if (e.epoch == epoch && e.tag == page_idx) {
        e.epoch = 0;
        ++stats.shootdowns;
    }
}

void
TranslationCache::shootdownAll()
{
    ++epoch;
    ++stats.shootdowns;
}

} // namespace cronus::hw
