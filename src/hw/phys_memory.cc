#include "phys_memory.hh"

#include <cstring>

namespace cronus::hw
{

uint8_t *
PhysicalMemory::pageFor(PhysAddr addr, bool create) const
{
    uint64_t idx = addr >> kPageShift;
    auto it = pages.find(idx);
    if (it != pages.end())
        return it->second.get();
    if (!create)
        return nullptr;
    auto block = std::make_unique<uint8_t[]>(kPageSize);
    std::memset(block.get(), 0, kPageSize);
    uint8_t *raw = block.get();
    pages.emplace(idx, std::move(block));
    return raw;
}

Status
PhysicalMemory::read(PhysAddr addr, uint8_t *out, uint64_t len) const
{
    if (!inRange(addr, len))
        return Status(ErrorCode::AccessFault,
                      "physical read out of range");
    while (len > 0) {
        uint64_t in_page = kPageSize - (addr & (kPageSize - 1));
        uint64_t take = std::min(len, in_page);
        const uint8_t *page = pageFor(addr, false);
        if (page)
            std::memcpy(out, page + (addr & (kPageSize - 1)), take);
        else
            std::memset(out, 0, take);
        addr += take;
        out += take;
        len -= take;
    }
    return Status::ok();
}

Result<Bytes>
PhysicalMemory::read(PhysAddr addr, uint64_t len) const
{
    Bytes out(len);
    Status s = read(addr, out.data(), len);
    if (!s.isOk())
        return s;
    return out;
}

Status
PhysicalMemory::write(PhysAddr addr, const uint8_t *data, uint64_t len)
{
    if (!inRange(addr, len))
        return Status(ErrorCode::AccessFault,
                      "physical write out of range");
    while (len > 0) {
        uint64_t in_page = kPageSize - (addr & (kPageSize - 1));
        uint64_t take = std::min(len, in_page);
        uint8_t *page = pageFor(addr, true);
        std::memcpy(page + (addr & (kPageSize - 1)), data, take);
        addr += take;
        data += take;
        len -= take;
    }
    return Status::ok();
}

Status
PhysicalMemory::write(PhysAddr addr, const Bytes &data)
{
    return write(addr, data.data(), data.size());
}

MemSpan
PhysicalMemory::borrow(PhysAddr addr, uint64_t len)
{
    if (len == 0 || !inRange(addr, len))
        return MemSpan{};
    uint64_t off = addr & (kPageSize - 1);
    if (off + len > kPageSize)
        return MemSpan{};
    uint8_t *page = pageFor(addr, true);
    return MemSpan{page + off, len};
}

Status
PhysicalMemory::clear(PhysAddr addr, uint64_t len)
{
    if (!inRange(addr, len))
        return Status(ErrorCode::AccessFault,
                      "physical clear out of range");
    while (len > 0) {
        uint64_t in_page = kPageSize - (addr & (kPageSize - 1));
        uint64_t take = std::min(len, in_page);
        uint8_t *page = pageFor(addr, false);
        if (page)
            std::memset(page + (addr & (kPageSize - 1)), 0, take);
        addr += take;
        len -= take;
    }
    return Status::ok();
}

} // namespace cronus::hw
