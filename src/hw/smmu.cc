#include "smmu.hh"

namespace cronus::hw
{

PageTable &
Smmu::streamTable(StreamId stream)
{
    return tables[stream];
}

Translation
Smmu::translate(StreamId stream, VirtAddr iova, uint64_t len,
                bool write) const
{
    auto it = tables.find(stream);
    if (it == tables.end())
        return Translation{0, FaultKind::Unmapped};
    return it->second.translate(iova, len, write);
}

size_t
Smmu::invalidateByTag(uint64_t share_tag)
{
    size_t count = 0;
    for (auto &[stream, table] : tables)
        count += table.invalidateByTag(share_tag);
    return count;
}

} // namespace cronus::hw
