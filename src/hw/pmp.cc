#include "pmp.hh"

#include "base/logging.hh"

namespace cronus::hw
{

Result<uint64_t>
Pmp::napotEncode(PhysAddr base, uint64_t size)
{
    if (size < 8 || (size & (size - 1)) != 0)
        return Status(ErrorCode::InvalidArgument,
                      "NAPOT size must be a power of two >= 8");
    if (base % size != 0)
        return Status(ErrorCode::InvalidArgument,
                      "NAPOT base must be naturally aligned");
    /* pmpaddr = (base >> 2) | ((size/2 - 1) >> 2)  -- the trailing
     * ones encode log2(size). */
    return (base >> 2) | ((size / 2 - 1) >> 2);
}

std::pair<PhysAddr, uint64_t>
Pmp::napotDecode(uint64_t addr)
{
    /* Count trailing ones. */
    int ones = 0;
    uint64_t v = addr;
    while (v & 1) {
        ++ones;
        v >>= 1;
    }
    uint64_t size = 8ull << ones;
    PhysAddr base = (addr & ~((1ull << (ones + 1)) - 1)) << 2;
    return {base, size};
}

Status
Pmp::configure(size_t index, const PmpEntry &entry)
{
    if (index >= kEntries)
        return Status(ErrorCode::InvalidArgument,
                      "PMP entry index out of range");
    if (entries[index].locked)
        return Status(ErrorCode::PermissionDenied,
                      "PMP entry is locked");
    entries[index] = entry;
    return Status::ok();
}

void
Pmp::reset()
{
    for (auto &entry : entries) {
        if (!entry.locked)
            entry = PmpEntry{};
    }
}

const PmpEntry &
Pmp::entry(size_t index) const
{
    CRONUS_ASSERT(index < kEntries, "PMP entry out of range");
    return entries[index];
}

bool
Pmp::matches(size_t index, PhysAddr addr, uint64_t len) const
{
    const PmpEntry &e = entries[index];
    PhysAddr lo = 0, hi = 0;
    switch (e.mode) {
      case PmpMode::Off:
        return false;
      case PmpMode::Na4:
        lo = e.addr << 2;
        hi = lo + 4;
        break;
      case PmpMode::Napot: {
        auto [base, size] = napotDecode(e.addr);
        lo = base;
        hi = base + size;
        break;
      }
      case PmpMode::Tor:
        lo = index == 0 ? 0 : (entries[index - 1].addr << 2);
        hi = e.addr << 2;
        break;
    }
    /* PMP requires the whole access inside the matching range. */
    return addr >= lo && addr + len <= hi;
}

Status
Pmp::check(PhysAddr addr, uint64_t len, PmpAccess access) const
{
    if (len == 0)
        len = 1;
    for (size_t i = 0; i < kEntries; ++i) {
        if (entries[i].mode == PmpMode::Off)
            continue;
        if (!matches(i, addr, len))
            continue;
        const PmpEntry &e = entries[i];
        bool allowed = (access == PmpAccess::Read && e.read) ||
                       (access == PmpAccess::Write && e.write) ||
                       (access == PmpAccess::Exec && e.exec);
        if (allowed)
            return Status::ok();
        return Status(ErrorCode::AccessFault,
                      "PMP entry " + std::to_string(i) +
                      " denies the access");
    }
    return Status(ErrorCode::AccessFault,
                  "no PMP entry matches (default deny)");
}

Result<Pmp>
pmpForPartition(const std::vector<PmpRegion> &regions)
{
    if (regions.size() > Pmp::kEntries)
        return Status(ErrorCode::ResourceExhausted,
                      "more regions than PMP entries");
    Pmp pmp;
    size_t index = 0;
    for (const auto &region : regions) {
        auto encoded = Pmp::napotEncode(region.base, region.size);
        if (!encoded.isOk())
            return encoded.status();
        PmpEntry entry;
        entry.mode = PmpMode::Napot;
        entry.addr = encoded.value();
        entry.read = true;
        entry.write = region.write;
        entry.exec = false;
        CRONUS_RETURN_IF_ERROR(pmp.configure(index++, entry));
    }
    return pmp;
}

} // namespace cronus::hw
