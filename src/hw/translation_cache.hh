/**
 * @file
 * Software TLB for the page-table models.
 *
 * Every PageTable (stage-2 per partition, SMMU per stream, GPU
 * per-context VA space) embeds one TranslationCache: a direct-mapped
 * VA-page -> (phys page, perms, epoch) cache consulted before the
 * std::map walk. The cache only ever holds *positive* translations
 * of valid entries, so correctness reduces to one rule: every
 * page-table mutation must evict the affected pages (precise
 * shootdown) or bump the epoch (full shootdown). The first access
 * after an invalidation therefore walks the table and faults exactly
 * as the uncached model does -- the property the failover story
 * (§IV-D) and the differential-isolation fuzz oracle depend on.
 *
 * The cache is a pure performance layer: it never charges virtual
 * time and never changes outcomes, so figure-bench output is
 * byte-identical with the cache on or off (CRONUS_DISABLE_TLB=1).
 */

#ifndef CRONUS_HW_TRANSLATION_CACHE_HH
#define CRONUS_HW_TRANSLATION_CACHE_HH

#include <cstdint>
#include <vector>

#include "types.hh"

namespace cronus::hw
{

/** Hit/miss/shootdown counters, aggregatable across caches. */
struct TlbCounters
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fills = 0;
    uint64_t shootdowns = 0;

    void
    add(const TlbCounters &o)
    {
        hits += o.hits;
        misses += o.misses;
        fills += o.fills;
        shootdowns += o.shootdowns;
    }
};

class TranslationCache
{
  public:
    explicit TranslationCache(size_t sets = kDefaultSets);

    /**
     * Global runtime toggle. Initialized once from the
     * CRONUS_DISABLE_TLB environment variable (any non-empty value
     * other than "0" disables); benches flip it per measurement via
     * setGlobalEnable. Shootdown bookkeeping runs regardless of the
     * toggle so re-enabling never exposes stale entries.
     */
    static bool globalEnable();
    static void setGlobalEnable(bool on);

    /** Look up a page; fills @p phys_page / @p perms on hit. */
    bool lookup(uint64_t page_idx, PhysAddr &phys_page,
                PagePerms &perms) const;

    /**
     * Like lookup(), but also returns the cached host-page pointer
     * (nullptr until annotateHost() resolves it). The SPM's zero-copy
     * fast path uses this to reach backing memory without the
     * PhysicalMemory page map; host pointers are stable for the
     * lifetime of the platform, so validity is governed entirely by
     * the entry's tag/epoch discipline.
     */
    bool lookup(uint64_t page_idx, PhysAddr &phys_page,
                PagePerms &perms, uint8_t *&host) const;

    /** Install a positive translation for one page. */
    void fill(uint64_t page_idx, PhysAddr phys_page, PagePerms perms);

    /** Attach the backing host page to a currently-valid entry;
     *  no-op if the page is not cached (or the cache is disabled). */
    void annotateHost(uint64_t page_idx, uint8_t *host);

    /** Precise shootdown of a single page (no-op if not cached). */
    void evictPage(uint64_t page_idx);

    /** Full shootdown (epoch bump); O(1). */
    void shootdownAll();

    const TlbCounters &counters() const { return stats; }
    void resetCounters() { stats = TlbCounters{}; }

    static constexpr size_t kDefaultSets = 256;

  private:
    struct Entry
    {
        uint64_t tag = 0;
        PhysAddr physPage = 0;
        uint8_t *host = nullptr;
        PagePerms perms;
        /** Entry is valid iff epoch == owner's current epoch. An
         *  epoch of 0 is never current, so default entries miss. */
        uint64_t epoch = 0;
    };

    std::vector<Entry> slots;
    uint64_t epoch = 1;
    mutable TlbCounters stats;
};

} // namespace cronus::hw

#endif // CRONUS_HW_TRANSLATION_CACHE_HH
