#include "root_of_trust.hh"

namespace cronus::hw
{

void
VendorRegistry::addVendor(const std::string &vendor,
                          const crypto::PublicKey &key)
{
    vendors[vendor] = key;
}

Result<crypto::Signature>
VendorRegistry::endorse(const std::string &vendor,
                        const crypto::PrivateKey &vendor_key,
                        const crypto::PublicKey &device_key) const
{
    auto it = vendors.find(vendor);
    if (it == vendors.end())
        return Status(ErrorCode::NotFound,
                      "unknown vendor '" + vendor + "'");
    return crypto::sign(vendor_key, device_key.toBytes());
}

bool
VendorRegistry::verifyEndorsement(const std::string &vendor,
                                  const crypto::PublicKey &device_key,
                                  const crypto::Signature &endorsement)
    const
{
    auto it = vendors.find(vendor);
    if (it == vendors.end())
        return false;
    return crypto::verify(it->second, device_key.toBytes(),
                          endorsement);
}

} // namespace cronus::hw
