#include "device_tree.hh"

#include <set>

namespace cronus::hw
{

JsonValue
DtNode::toJson() const
{
    JsonObject obj;
    obj["name"] = name;
    obj["compatible"] = compatible;
    obj["mmio_base"] = static_cast<int64_t>(mmioBase);
    obj["mmio_size"] = static_cast<int64_t>(mmioSize);
    obj["irq"] = static_cast<int64_t>(irq);
    obj["secure"] = (world == World::Secure);
    obj["mem_bytes"] = static_cast<int64_t>(memBytes);
    return JsonValue(std::move(obj));
}

Result<DtNode>
DtNode::fromJson(const JsonValue &v)
{
    DtNode node;
    auto name = v.getString("name");
    if (!name.isOk())
        return name.status();
    node.name = name.value();
    auto compatible = v.getString("compatible");
    if (!compatible.isOk())
        return compatible.status();
    node.compatible = compatible.value();
    auto base = v.getInt("mmio_base");
    if (!base.isOk())
        return base.status();
    node.mmioBase = static_cast<PhysAddr>(base.value());
    auto size = v.getInt("mmio_size");
    if (!size.isOk())
        return size.status();
    node.mmioSize = static_cast<uint64_t>(size.value());
    auto irq = v.getInt("irq");
    if (!irq.isOk())
        return irq.status();
    node.irq = static_cast<uint32_t>(irq.value());
    node.world = v["secure"].isBool() && v["secure"].asBool()
                     ? World::Secure
                     : World::Normal;
    if (v["mem_bytes"].isNumber())
        node.memBytes = static_cast<uint64_t>(v["mem_bytes"].asInt());
    return node;
}

const DtNode *
DeviceTree::find(const std::string &name) const
{
    for (const auto &node : nodes) {
        if (node.name == name)
            return &node;
    }
    return nullptr;
}

Status
DeviceTree::validate() const
{
    std::set<std::string> names;
    std::set<uint32_t> irqs;
    for (size_t i = 0; i < nodes.size(); ++i) {
        const DtNode &node = nodes[i];
        if (node.name.empty())
            return Status(ErrorCode::InvalidArgument,
                          "DT node with empty name");
        if (!names.insert(node.name).second)
            return Status(ErrorCode::InvalidArgument,
                          "duplicate DT node name '" + node.name +
                          "'");
        if (node.irq != 0 && !irqs.insert(node.irq).second)
            return Status(ErrorCode::InvalidArgument,
                          "duplicate IRQ " +
                          std::to_string(node.irq) +
                          " (interrupt spoofing)");
        if (node.mmioSize == 0)
            return Status(ErrorCode::InvalidArgument,
                          "DT node '" + node.name +
                          "' has empty MMIO window");
        for (size_t j = 0; j < i; ++j) {
            const DtNode &other = nodes[j];
            bool overlap = node.mmioBase <
                               other.mmioBase + other.mmioSize &&
                           other.mmioBase <
                               node.mmioBase + node.mmioSize;
            if (overlap)
                return Status(ErrorCode::InvalidArgument,
                              "MMIO overlap between '" + node.name +
                              "' and '" + other.name +
                              "' (MMIO remapping)");
        }
    }
    return Status::ok();
}

std::string
DeviceTree::serialize() const
{
    JsonArray arr;
    for (const auto &node : nodes)
        arr.push_back(node.toJson());
    JsonObject root;
    root["nodes"] = JsonValue(std::move(arr));
    return JsonValue(std::move(root)).dump();
}

Result<DeviceTree>
DeviceTree::deserialize(const std::string &text)
{
    auto doc = parseJson(text);
    if (!doc.isOk())
        return doc.status();
    auto nodes = doc.value().getArray("nodes");
    if (!nodes.isOk())
        return nodes.status();
    DeviceTree dt;
    for (const auto &entry : nodes.value()) {
        auto node = DtNode::fromJson(entry);
        if (!node.isOk())
            return node.status();
        dt.addNode(node.value());
    }
    return dt;
}

crypto::Digest
DeviceTree::measure() const
{
    return crypto::sha256(serialize());
}

} // namespace cronus::hw
