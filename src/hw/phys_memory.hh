/**
 * @file
 * Sparse simulated physical memory.
 *
 * Raw storage only: world/partition access checks are layered above
 * (Tzasc at the bus, stage-2 tables in the SPM). The backing store is
 * allocated page-by-page on first touch so multi-GiB address maps are
 * cheap to simulate.
 */

#ifndef CRONUS_HW_PHYS_MEMORY_HH
#define CRONUS_HW_PHYS_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/bytes.hh"
#include "base/status.hh"
#include "types.hh"

namespace cronus::hw
{

class PhysicalMemory
{
  public:
    /** @p size total byte capacity of the address range [0, size). */
    explicit PhysicalMemory(uint64_t size) : totalSize(size) {}

    uint64_t size() const { return totalSize; }

    /** Copy @p len bytes at @p addr into @p out. */
    Status read(PhysAddr addr, uint8_t *out, uint64_t len) const;
    Result<Bytes> read(PhysAddr addr, uint64_t len) const;

    /** Write @p len bytes at @p addr. */
    Status write(PhysAddr addr, const uint8_t *data, uint64_t len);
    Status write(PhysAddr addr, const Bytes &data);

    /** Zero a range (used by failure-clearing logic, A3). */
    Status clear(PhysAddr addr, uint64_t len);

    /**
     * Borrow a direct pointer to @p len bytes at @p addr for
     * zero-copy access. Fails (null span) if the run crosses a page
     * boundary or is out of range. Always materializes the backing
     * page, so the span is valid for reads and writes alike.
     */
    MemSpan borrow(PhysAddr addr, uint64_t len);

    /** Count of pages actually materialized (test introspection). */
    size_t residentPages() const { return pages.size(); }

  private:
    bool inRange(PhysAddr addr, uint64_t len) const
    {
        return addr < totalSize && len <= totalSize - addr;
    }

    uint8_t *pageFor(PhysAddr addr, bool create) const;

    uint64_t totalSize;
    /* page index -> 4 KiB block; mutable for lazy read allocation */
    mutable std::unordered_map<uint64_t,
                               std::unique_ptr<uint8_t[]>> pages;
};

} // namespace cronus::hw

#endif // CRONUS_HW_PHYS_MEMORY_HH
