/**
 * @file
 * System MMU model: translates device DMA through per-stream tables.
 *
 * CRONUS's failover step 1 invalidates SMMU entries (spt2) together
 * with stage-2 entries so an in-flight accelerator cannot DMA into a
 * failed partition's shared pages.
 */

#ifndef CRONUS_HW_SMMU_HH
#define CRONUS_HW_SMMU_HH

#include <map>

#include "page_table.hh"
#include "types.hh"

namespace cronus::hw
{

class Smmu
{
  public:
    /** Get (creating on demand) the table for a stream. */
    PageTable &streamTable(StreamId stream);

    /** Translate a DMA access; Unmapped fault if stream unknown. */
    Translation translate(StreamId stream, VirtAddr iova,
                          uint64_t len, bool write) const;

    /** Invalidate all entries with @p share_tag across all streams.
     *  Returns number of entries invalidated. */
    size_t invalidateByTag(uint64_t share_tag);

    bool hasStream(StreamId stream) const
    {
        return tables.count(stream) > 0;
    }

    /** Aggregated software-TLB counters across all stream tables. */
    TlbCounters
    tlbCounters() const
    {
        TlbCounters sum;
        for (const auto &[stream, table] : tables)
            sum.add(table.tlbCounters());
        return sum;
    }

  private:
    std::map<StreamId, PageTable> tables;
};

} // namespace cronus::hw

#endif // CRONUS_HW_SMMU_HH
