/**
 * @file
 * Common hardware-level types for the simulated platform.
 */

#ifndef CRONUS_HW_TYPES_HH
#define CRONUS_HW_TYPES_HH

#include <cstdint>
#include <string>

namespace cronus::hw
{

using PhysAddr = uint64_t;
using VirtAddr = uint64_t;

constexpr uint64_t kPageSize = 4096;
constexpr uint64_t kPageShift = 12;

inline PhysAddr pageAlignDown(PhysAddr a) { return a & ~(kPageSize - 1); }
inline PhysAddr pageAlignUp(PhysAddr a)
{
    return (a + kPageSize - 1) & ~(kPageSize - 1);
}
inline bool isPageAligned(PhysAddr a) { return (a & (kPageSize - 1)) == 0; }

/** Which world issues an access (TrustZone NS bit, inverted). */
enum class World : uint8_t
{
    Normal,
    Secure,
};

inline const char *
worldName(World w)
{
    return w == World::Normal ? "normal" : "secure";
}

/** Identifier of an S-EL2 partition (0 is reserved for the SPM). */
using PartitionId = uint32_t;
constexpr PartitionId kSpmPartition = 0;

/** SMMU stream id assigned to a DMA-capable device. */
using StreamId = uint32_t;

/** Page permissions. */
struct PagePerms
{
    bool read = true;
    bool write = true;
    bool exec = false;

    static PagePerms rw() { return {true, true, false}; }
    static PagePerms ro() { return {true, false, false}; }
    static PagePerms rwx() { return {true, true, true}; }
};

} // namespace cronus::hw

#endif // CRONUS_HW_TYPES_HH
