/**
 * @file
 * Common hardware-level types for the simulated platform.
 */

#ifndef CRONUS_HW_TYPES_HH
#define CRONUS_HW_TYPES_HH

#include <cstdint>
#include <string>

namespace cronus::hw
{

using PhysAddr = uint64_t;
using VirtAddr = uint64_t;

constexpr uint64_t kPageSize = 4096;
constexpr uint64_t kPageShift = 12;

inline PhysAddr pageAlignDown(PhysAddr a) { return a & ~(kPageSize - 1); }
inline PhysAddr pageAlignUp(PhysAddr a)
{
    return (a + kPageSize - 1) & ~(kPageSize - 1);
}
inline bool isPageAligned(PhysAddr a) { return (a & (kPageSize - 1)) == 0; }

/** Which world issues an access (TrustZone NS bit, inverted). */
enum class World : uint8_t
{
    Normal,
    Secure,
};

inline const char *
worldName(World w)
{
    return w == World::Normal ? "normal" : "secure";
}

/** Identifier of an S-EL2 partition (0 is reserved for the SPM). */
using PartitionId = uint32_t;
constexpr PartitionId kSpmPartition = 0;

/** SMMU stream id assigned to a DMA-capable device. */
using StreamId = uint32_t;

/**
 * A borrowed window into simulated DRAM (zero-copy fast path).
 *
 * Only ever spans a single physical page: backing pages are
 * allocated independently, so cross-page runs are not contiguous in
 * host memory. Pointers stay valid for the lifetime of the
 * PhysicalMemory (pages are never freed), but the *translation* that
 * produced them can be revoked at any time — callers must re-borrow
 * per logical access, never cache a span across accesses.
 */
struct MemSpan
{
    uint8_t *data = nullptr;
    uint64_t len = 0;

    bool ok() const { return data != nullptr; }
};

/** Page permissions. */
struct PagePerms
{
    bool read = true;
    bool write = true;
    bool exec = false;

    static PagePerms rw() { return {true, true, false}; }
    static PagePerms ro() { return {true, false, false}; }
    static PagePerms rwx() { return {true, true, true}; }
};

} // namespace cronus::hw

#endif // CRONUS_HW_TYPES_HH
