/**
 * @file
 * TrustZone Address Space Controller (TZASC) and Protection
 * Controller (TZPC) models.
 *
 * The TZASC marks DRAM regions secure/normal and filters normal-world
 * access to secure regions. The TZPC does the same for I/O devices.
 * Mirrors the paper's emulated ARM TZC-400 configuration (§V-A).
 */

#ifndef CRONUS_HW_TZASC_HH
#define CRONUS_HW_TZASC_HH

#include <map>
#include <string>
#include <vector>

#include "base/status.hh"
#include "types.hh"

namespace cronus::hw
{

/** One TZASC region descriptor. */
struct MemRegion
{
    std::string name;
    PhysAddr base = 0;
    uint64_t size = 0;
    World world = World::Normal;

    bool
    contains(PhysAddr addr, uint64_t len) const
    {
        return addr >= base && len <= size &&
               addr - base <= size - len;
    }

    bool
    overlaps(const MemRegion &o) const
    {
        return base < o.base + o.size && o.base < base + size;
    }
};

class Tzasc
{
  public:
    /**
     * Configure a region. Regions may only be programmed from the
     * secure world (the paper: configuration is locked down at boot).
     */
    Status addRegion(const MemRegion &region, World configurator);

    /** Check one access; normal world cannot touch secure regions. */
    Status checkAccess(PhysAddr addr, uint64_t len, World from) const;

    /** True iff the whole range lies in a secure region. */
    bool isSecure(PhysAddr addr, uint64_t len) const;

    /** Lock the configuration (secure boot completes). */
    void lockDown() { locked = true; }
    bool isLocked() const { return locked; }

    const std::vector<MemRegion> &regions() const { return regionList; }

    /** Find the configured region covering an address, if any. */
    const MemRegion *findRegion(PhysAddr addr) const;

  private:
    std::vector<MemRegion> regionList;
    bool locked = false;
};

/** TrustZone Protection Controller: secure/normal gating of devices. */
class Tzpc
{
  public:
    /** Assign a device to a world; only from the secure world, and
     *  only before lockdown. */
    Status assignDevice(const std::string &device, World world,
                        World configurator);

    /** Check whether @p from may access @p device. */
    Status checkAccess(const std::string &device, World from) const;

    /** World a device is assigned to (Normal if unknown). */
    World deviceWorld(const std::string &device) const;

    void lockDown() { locked = true; }
    bool isLocked() const { return locked; }

  private:
    std::map<std::string, World> assignment;
    bool locked = false;
};

} // namespace cronus::hw

#endif // CRONUS_HW_TZASC_HH
