/**
 * @file
 * Generic page table model used for stage-1 (mEnclave), stage-2
 * (S-EL2 partition) and SMMU (device DMA) translations.
 *
 * Proceed-trap failover (§IV-D) relies on the SPM invalidating
 * stage-2/SMMU entries so that subsequent accesses *fault*; the table
 * therefore distinguishes "unmapped" from "invalidated" so trap
 * handlers can tell a failure trap from a plain bug.
 */

#ifndef CRONUS_HW_PAGE_TABLE_HH
#define CRONUS_HW_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "base/status.hh"
#include "translation_cache.hh"
#include "types.hh"

namespace cronus::hw
{

/** One page mapping. */
struct PageEntry
{
    PhysAddr phys = 0;
    PagePerms perms;
    bool valid = true;
    /** Opaque tag identifying who the page is shared with (used by
     *  the SPM to find entries to invalidate on partition failure). */
    uint64_t shareTag = 0;
};

/** Result of a translation attempt. */
enum class FaultKind
{
    None,
    /** No entry was ever installed. */
    Unmapped,
    /** Entry exists but was invalidated (failure trap, §IV-D). */
    Invalidated,
    /** Permission violation. */
    Permission,
};

struct Translation
{
    PhysAddr phys = 0;
    FaultKind fault = FaultKind::None;
    /** VA of the first faulting byte (valid when fault != None);
     *  trap handlers report the precise page, not the access base. */
    VirtAddr faultVa = 0;

    bool ok() const { return fault == FaultKind::None; }
};

class PageTable
{
  public:
    /** Install a mapping for the page containing @p va. */
    Status map(VirtAddr va, PhysAddr pa, PagePerms perms,
               uint64_t share_tag = 0);

    /** Remove a mapping entirely. */
    Status unmap(VirtAddr va);

    /**
     * Invalidate (but keep) a mapping so later accesses fault with
     * FaultKind::Invalidated.
     */
    Status invalidate(VirtAddr va);

    /** Re-validate a previously invalidated mapping. */
    Status revalidate(VirtAddr va);

    /** Translate one access of @p len bytes starting at @p va.
     *  @p write selects the permission checked. */
    Translation translate(VirtAddr va, uint64_t len, bool write) const;

    /**
     * TLB-only peek for the SPM zero-copy fast path: hit iff the
     * page is cached, valid and @p write is permitted. Never walks
     * the table, so a miss (or disabled cache) means "take the full
     * translate() path". @p host is the annotated backing page
     * (nullptr until cacheHostPage() resolves it).
     */
    bool
    cachedTranslate(uint64_t page_idx, PhysAddr &phys_page,
                    bool write, uint8_t *&host) const
    {
        PagePerms perms;
        if (!tlb.lookup(page_idx, phys_page, perms, host))
            return false;
        return write ? perms.write : perms.read;
    }

    /** Attach the backing host page to a cached translation. */
    void
    cacheHostPage(uint64_t page_idx, uint8_t *host)
    {
        tlb.annotateHost(page_idx, host);
    }

    /** Invalidate every entry whose shareTag matches. Returns count. */
    size_t invalidateByTag(uint64_t share_tag);

    /** Remove every entry whose shareTag matches. Returns count. */
    size_t unmapByTag(uint64_t share_tag);

    /** Visit all entries (introspection for SPM bookkeeping). */
    void forEach(const std::function<void(VirtAddr,
                                          const PageEntry &)> &fn) const;

    bool isMapped(VirtAddr va) const;
    std::optional<PageEntry> lookup(VirtAddr va) const;

    size_t entryCount() const { return entries.size(); }

    void
    clear()
    {
        entries.clear();
        tlb.shootdownAll();
    }

    /** Software-TLB introspection (stats, tests). */
    const TlbCounters &tlbCounters() const { return tlb.counters(); }
    void resetTlbCounters() { tlb.resetCounters(); }

  private:
    /* page index -> entry */
    std::map<uint64_t, PageEntry> entries;
    /* Consulted before the map walk for single-page accesses;
     * mutable because translate() is logically const. */
    mutable TranslationCache tlb;
};

} // namespace cronus::hw

#endif // CRONUS_HW_PAGE_TABLE_HH
