/**
 * @file
 * Device tree (DT) model with TrustPath-style validation.
 *
 * The untrusted normal OS provides the DT describing accelerators and
 * their MMIO/IRQ resources. CRONUS's attestation protocol (§IV-A)
 * accepts only valid DTs -- no overlapping MMIO ranges, no duplicate
 * IRQs -- and includes the DT hash in the attestation report so a
 * client can detect misconfigured or fabricated hardware.
 */

#ifndef CRONUS_HW_DEVICE_TREE_HH
#define CRONUS_HW_DEVICE_TREE_HH

#include <string>
#include <vector>

#include "base/json.hh"
#include "base/status.hh"
#include "crypto/sha256.hh"
#include "types.hh"

namespace cronus::hw
{

/** One DT node describing a device. */
struct DtNode
{
    std::string name;        ///< e.g. "gpu0"
    std::string compatible;  ///< e.g. "nvidia,gtx2080"
    PhysAddr mmioBase = 0;
    uint64_t mmioSize = 0;
    uint32_t irq = 0;
    World world = World::Normal;
    /** Device memory (e.g. GPU VRAM) capacity in bytes. */
    uint64_t memBytes = 0;

    JsonValue toJson() const;
    static Result<DtNode> fromJson(const JsonValue &v);
};

class DeviceTree
{
  public:
    void addNode(DtNode node) { nodes.push_back(std::move(node)); }

    /* Ref-qualified: calling all() on a temporary DeviceTree would
     * dangle, so it is deleted. Bind the tree to a local first. */
    const std::vector<DtNode> &all() const & { return nodes; }
    const std::vector<DtNode> &all() const && = delete;
    const DtNode *find(const std::string &name) const;

    /**
     * TrustPath-style validation: reject overlapping MMIO windows,
     * duplicate IRQs and duplicate names (defends against MMIO
     * remapping and interrupt spoofing attacks).
     */
    Status validate() const;

    /** Canonical JSON serialization (stable ordering). */
    std::string serialize() const;
    static Result<DeviceTree> deserialize(const std::string &text);

    /** Measurement included in attestation reports. */
    crypto::Digest measure() const;

  private:
    std::vector<DtNode> nodes;
};

} // namespace cronus::hw

#endif // CRONUS_HW_DEVICE_TREE_HH
