# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_tee[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_inject[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_mos[1]_include.cmake")
