file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/attestation_test.cc.o"
  "CMakeFiles/test_core.dir/core/attestation_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/manifest_test.cc.o"
  "CMakeFiles/test_core.dir/core/manifest_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/micro_enclave_test.cc.o"
  "CMakeFiles/test_core.dir/core/micro_enclave_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/pipe_test.cc.o"
  "CMakeFiles/test_core.dir/core/pipe_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/srpc_edge_test.cc.o"
  "CMakeFiles/test_core.dir/core/srpc_edge_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/srpc_test.cc.o"
  "CMakeFiles/test_core.dir/core/srpc_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/system_test.cc.o"
  "CMakeFiles/test_core.dir/core/system_test.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
