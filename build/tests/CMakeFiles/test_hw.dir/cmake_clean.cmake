file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/device_tree_test.cc.o"
  "CMakeFiles/test_hw.dir/hw/device_tree_test.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/page_table_test.cc.o"
  "CMakeFiles/test_hw.dir/hw/page_table_test.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/phys_memory_test.cc.o"
  "CMakeFiles/test_hw.dir/hw/phys_memory_test.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/platform_test.cc.o"
  "CMakeFiles/test_hw.dir/hw/platform_test.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/pmp_test.cc.o"
  "CMakeFiles/test_hw.dir/hw/pmp_test.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/tzasc_test.cc.o"
  "CMakeFiles/test_hw.dir/hw/tzasc_test.cc.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
