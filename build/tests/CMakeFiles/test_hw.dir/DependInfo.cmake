
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/device_tree_test.cc" "tests/CMakeFiles/test_hw.dir/hw/device_tree_test.cc.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/device_tree_test.cc.o.d"
  "/root/repo/tests/hw/page_table_test.cc" "tests/CMakeFiles/test_hw.dir/hw/page_table_test.cc.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/page_table_test.cc.o.d"
  "/root/repo/tests/hw/phys_memory_test.cc" "tests/CMakeFiles/test_hw.dir/hw/phys_memory_test.cc.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/phys_memory_test.cc.o.d"
  "/root/repo/tests/hw/platform_test.cc" "tests/CMakeFiles/test_hw.dir/hw/platform_test.cc.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/platform_test.cc.o.d"
  "/root/repo/tests/hw/pmp_test.cc" "tests/CMakeFiles/test_hw.dir/hw/pmp_test.cc.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/pmp_test.cc.o.d"
  "/root/repo/tests/hw/tzasc_test.cc" "tests/CMakeFiles/test_hw.dir/hw/tzasc_test.cc.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/tzasc_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/cronus_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cronus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cronus_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
