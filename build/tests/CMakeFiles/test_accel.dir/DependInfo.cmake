
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accel/cpu_test.cc" "tests/CMakeFiles/test_accel.dir/accel/cpu_test.cc.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/cpu_test.cc.o.d"
  "/root/repo/tests/accel/gpu_test.cc" "tests/CMakeFiles/test_accel.dir/accel/gpu_test.cc.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/gpu_test.cc.o.d"
  "/root/repo/tests/accel/npu_test.cc" "tests/CMakeFiles/test_accel.dir/accel/npu_test.cc.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/npu_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/cronus_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cronus_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cronus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cronus_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
