file(REMOVE_RECURSE
  "CMakeFiles/test_accel.dir/accel/cpu_test.cc.o"
  "CMakeFiles/test_accel.dir/accel/cpu_test.cc.o.d"
  "CMakeFiles/test_accel.dir/accel/gpu_test.cc.o"
  "CMakeFiles/test_accel.dir/accel/gpu_test.cc.o.d"
  "CMakeFiles/test_accel.dir/accel/npu_test.cc.o"
  "CMakeFiles/test_accel.dir/accel/npu_test.cc.o.d"
  "test_accel"
  "test_accel.pdb"
  "test_accel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
