
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/aes_test.cc" "tests/CMakeFiles/test_crypto.dir/crypto/aes_test.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/aes_test.cc.o.d"
  "/root/repo/tests/crypto/keys_test.cc" "tests/CMakeFiles/test_crypto.dir/crypto/keys_test.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/keys_test.cc.o.d"
  "/root/repo/tests/crypto/sha256_test.cc" "tests/CMakeFiles/test_crypto.dir/crypto/sha256_test.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/sha256_test.cc.o.d"
  "/root/repo/tests/crypto/uint256_test.cc" "tests/CMakeFiles/test_crypto.dir/crypto/uint256_test.cc.o" "gcc" "tests/CMakeFiles/test_crypto.dir/crypto/uint256_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/cronus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cronus_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
