file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/aes_test.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/aes_test.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/keys_test.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/keys_test.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/sha256_test.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/sha256_test.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/uint256_test.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/uint256_test.cc.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
