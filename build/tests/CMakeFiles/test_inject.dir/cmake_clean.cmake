file(REMOVE_RECURSE
  "CMakeFiles/test_inject.dir/inject/auditor_test.cc.o"
  "CMakeFiles/test_inject.dir/inject/auditor_test.cc.o.d"
  "CMakeFiles/test_inject.dir/inject/fault_plan_test.cc.o"
  "CMakeFiles/test_inject.dir/inject/fault_plan_test.cc.o.d"
  "CMakeFiles/test_inject.dir/inject/injector_test.cc.o"
  "CMakeFiles/test_inject.dir/inject/injector_test.cc.o.d"
  "test_inject"
  "test_inject.pdb"
  "test_inject[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
