file(REMOVE_RECURSE
  "CMakeFiles/test_tee.dir/tee/secure_monitor_test.cc.o"
  "CMakeFiles/test_tee.dir/tee/secure_monitor_test.cc.o.d"
  "CMakeFiles/test_tee.dir/tee/spm_test.cc.o"
  "CMakeFiles/test_tee.dir/tee/spm_test.cc.o.d"
  "test_tee"
  "test_tee.pdb"
  "test_tee[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
