file(REMOVE_RECURSE
  "CMakeFiles/fig09_failover.dir/fig09_failover.cc.o"
  "CMakeFiles/fig09_failover.dir/fig09_failover.cc.o.d"
  "fig09_failover"
  "fig09_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
