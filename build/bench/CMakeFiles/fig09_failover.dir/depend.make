# Empty dependencies file for fig09_failover.
# This may be replaced when dependencies are built.
