file(REMOVE_RECURSE
  "CMakeFiles/fig10a_vta.dir/fig10a_vta.cc.o"
  "CMakeFiles/fig10a_vta.dir/fig10a_vta.cc.o.d"
  "fig10a_vta"
  "fig10a_vta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_vta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
