# Empty dependencies file for fig10a_vta.
# This may be replaced when dependencies are built.
