file(REMOVE_RECURSE
  "CMakeFiles/fig10b_inference.dir/fig10b_inference.cc.o"
  "CMakeFiles/fig10b_inference.dir/fig10b_inference.cc.o.d"
  "fig10b_inference"
  "fig10b_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
