# Empty compiler generated dependencies file for fig10b_inference.
# This may be replaced when dependencies are built.
