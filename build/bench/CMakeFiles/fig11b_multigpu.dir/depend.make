# Empty dependencies file for fig11b_multigpu.
# This may be replaced when dependencies are built.
