file(REMOVE_RECURSE
  "CMakeFiles/fig11b_multigpu.dir/fig11b_multigpu.cc.o"
  "CMakeFiles/fig11b_multigpu.dir/fig11b_multigpu.cc.o.d"
  "fig11b_multigpu"
  "fig11b_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
