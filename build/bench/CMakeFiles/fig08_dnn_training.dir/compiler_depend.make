# Empty compiler generated dependencies file for fig08_dnn_training.
# This may be replaced when dependencies are built.
