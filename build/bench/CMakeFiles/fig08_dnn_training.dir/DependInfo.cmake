
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08_dnn_training.cc" "bench/CMakeFiles/fig08_dnn_training.dir/fig08_dnn_training.cc.o" "gcc" "bench/CMakeFiles/fig08_dnn_training.dir/fig08_dnn_training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/cronus_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cronus_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cronus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/inject/CMakeFiles/cronus_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/mos/CMakeFiles/cronus_mos.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cronus_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/cronus_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cronus_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cronus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cronus_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
