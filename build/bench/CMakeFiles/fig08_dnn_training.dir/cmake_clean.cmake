file(REMOVE_RECURSE
  "CMakeFiles/fig08_dnn_training.dir/fig08_dnn_training.cc.o"
  "CMakeFiles/fig08_dnn_training.dir/fig08_dnn_training.cc.o.d"
  "fig08_dnn_training"
  "fig08_dnn_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_dnn_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
