file(REMOVE_RECURSE
  "CMakeFiles/fig07_rodinia.dir/fig07_rodinia.cc.o"
  "CMakeFiles/fig07_rodinia.dir/fig07_rodinia.cc.o.d"
  "fig07_rodinia"
  "fig07_rodinia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_rodinia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
