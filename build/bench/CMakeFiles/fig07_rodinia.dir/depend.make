# Empty dependencies file for fig07_rodinia.
# This may be replaced when dependencies are built.
