file(REMOVE_RECURSE
  "CMakeFiles/ablation_srpc.dir/ablation_srpc.cc.o"
  "CMakeFiles/ablation_srpc.dir/ablation_srpc.cc.o.d"
  "ablation_srpc"
  "ablation_srpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_srpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
