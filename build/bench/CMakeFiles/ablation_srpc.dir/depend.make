# Empty dependencies file for ablation_srpc.
# This may be replaced when dependencies are built.
