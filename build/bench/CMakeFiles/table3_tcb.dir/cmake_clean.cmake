file(REMOVE_RECURSE
  "CMakeFiles/table3_tcb.dir/table3_tcb.cc.o"
  "CMakeFiles/table3_tcb.dir/table3_tcb.cc.o.d"
  "table3_tcb"
  "table3_tcb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_tcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
