# Empty dependencies file for fig11a_spatial.
# This may be replaced when dependencies are built.
