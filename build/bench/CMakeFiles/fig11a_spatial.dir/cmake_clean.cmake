file(REMOVE_RECURSE
  "CMakeFiles/fig11a_spatial.dir/fig11a_spatial.cc.o"
  "CMakeFiles/fig11a_spatial.dir/fig11a_spatial.cc.o.d"
  "fig11a_spatial"
  "fig11a_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
