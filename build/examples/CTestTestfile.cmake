# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dnn_training "/root/repo/build/examples/dnn_training")
set_tests_properties(example_dnn_training PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_npu_inference "/root/repo/build/examples/npu_inference")
set_tests_properties(example_npu_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failover_demo "/root/repo/build/examples/failover_demo")
set_tests_properties(example_failover_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spatial_sharing "/root/repo/build/examples/spatial_sharing")
set_tests_properties(example_spatial_sharing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_auto_partition "/root/repo/build/examples/auto_partition")
set_tests_properties(example_auto_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
