# Empty compiler generated dependencies file for npu_inference.
# This may be replaced when dependencies are built.
