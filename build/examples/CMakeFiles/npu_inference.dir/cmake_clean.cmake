file(REMOVE_RECURSE
  "CMakeFiles/npu_inference.dir/npu_inference.cpp.o"
  "CMakeFiles/npu_inference.dir/npu_inference.cpp.o.d"
  "npu_inference"
  "npu_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npu_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
