# Empty dependencies file for auto_partition.
# This may be replaced when dependencies are built.
