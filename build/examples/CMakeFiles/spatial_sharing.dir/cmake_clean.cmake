file(REMOVE_RECURSE
  "CMakeFiles/spatial_sharing.dir/spatial_sharing.cpp.o"
  "CMakeFiles/spatial_sharing.dir/spatial_sharing.cpp.o.d"
  "spatial_sharing"
  "spatial_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
