# Empty dependencies file for spatial_sharing.
# This may be replaced when dependencies are built.
