file(REMOVE_RECURSE
  "CMakeFiles/dnn_training.dir/dnn_training.cpp.o"
  "CMakeFiles/dnn_training.dir/dnn_training.cpp.o.d"
  "dnn_training"
  "dnn_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
