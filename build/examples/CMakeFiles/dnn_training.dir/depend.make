# Empty dependencies file for dnn_training.
# This may be replaced when dependencies are built.
