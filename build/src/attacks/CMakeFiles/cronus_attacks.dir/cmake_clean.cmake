file(REMOVE_RECURSE
  "CMakeFiles/cronus_attacks.dir/attacks.cc.o"
  "CMakeFiles/cronus_attacks.dir/attacks.cc.o.d"
  "libcronus_attacks.a"
  "libcronus_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronus_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
