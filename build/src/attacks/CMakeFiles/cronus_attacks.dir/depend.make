# Empty dependencies file for cronus_attacks.
# This may be replaced when dependencies are built.
