file(REMOVE_RECURSE
  "libcronus_attacks.a"
)
