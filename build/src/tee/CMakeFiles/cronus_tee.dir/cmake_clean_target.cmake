file(REMOVE_RECURSE
  "libcronus_tee.a"
)
