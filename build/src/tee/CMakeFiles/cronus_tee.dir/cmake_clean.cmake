file(REMOVE_RECURSE
  "CMakeFiles/cronus_tee.dir/normal_world.cc.o"
  "CMakeFiles/cronus_tee.dir/normal_world.cc.o.d"
  "CMakeFiles/cronus_tee.dir/secure_monitor.cc.o"
  "CMakeFiles/cronus_tee.dir/secure_monitor.cc.o.d"
  "CMakeFiles/cronus_tee.dir/spm.cc.o"
  "CMakeFiles/cronus_tee.dir/spm.cc.o.d"
  "libcronus_tee.a"
  "libcronus_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronus_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
