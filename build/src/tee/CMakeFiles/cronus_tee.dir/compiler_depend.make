# Empty compiler generated dependencies file for cronus_tee.
# This may be replaced when dependencies are built.
