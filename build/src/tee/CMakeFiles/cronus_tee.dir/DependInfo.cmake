
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tee/normal_world.cc" "src/tee/CMakeFiles/cronus_tee.dir/normal_world.cc.o" "gcc" "src/tee/CMakeFiles/cronus_tee.dir/normal_world.cc.o.d"
  "/root/repo/src/tee/secure_monitor.cc" "src/tee/CMakeFiles/cronus_tee.dir/secure_monitor.cc.o" "gcc" "src/tee/CMakeFiles/cronus_tee.dir/secure_monitor.cc.o.d"
  "/root/repo/src/tee/spm.cc" "src/tee/CMakeFiles/cronus_tee.dir/spm.cc.o" "gcc" "src/tee/CMakeFiles/cronus_tee.dir/spm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/cronus_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cronus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cronus_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
