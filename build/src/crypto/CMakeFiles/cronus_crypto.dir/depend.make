# Empty dependencies file for cronus_crypto.
# This may be replaced when dependencies are built.
