
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/cronus_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/cronus_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/keys.cc" "src/crypto/CMakeFiles/cronus_crypto.dir/keys.cc.o" "gcc" "src/crypto/CMakeFiles/cronus_crypto.dir/keys.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/cronus_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/cronus_crypto.dir/sha256.cc.o.d"
  "/root/repo/src/crypto/uint256.cc" "src/crypto/CMakeFiles/cronus_crypto.dir/uint256.cc.o" "gcc" "src/crypto/CMakeFiles/cronus_crypto.dir/uint256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cronus_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
