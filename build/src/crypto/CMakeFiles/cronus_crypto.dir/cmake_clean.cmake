file(REMOVE_RECURSE
  "CMakeFiles/cronus_crypto.dir/aes.cc.o"
  "CMakeFiles/cronus_crypto.dir/aes.cc.o.d"
  "CMakeFiles/cronus_crypto.dir/keys.cc.o"
  "CMakeFiles/cronus_crypto.dir/keys.cc.o.d"
  "CMakeFiles/cronus_crypto.dir/sha256.cc.o"
  "CMakeFiles/cronus_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/cronus_crypto.dir/uint256.cc.o"
  "CMakeFiles/cronus_crypto.dir/uint256.cc.o.d"
  "libcronus_crypto.a"
  "libcronus_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronus_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
