file(REMOVE_RECURSE
  "libcronus_crypto.a"
)
