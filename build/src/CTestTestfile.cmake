# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("crypto")
subdirs("hw")
subdirs("accel")
subdirs("tee")
subdirs("mos")
subdirs("core")
subdirs("inject")
subdirs("baseline")
subdirs("workloads")
subdirs("attacks")
