
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attestation.cc" "src/core/CMakeFiles/cronus_core.dir/attestation.cc.o" "gcc" "src/core/CMakeFiles/cronus_core.dir/attestation.cc.o.d"
  "/root/repo/src/core/auto_partition.cc" "src/core/CMakeFiles/cronus_core.dir/auto_partition.cc.o" "gcc" "src/core/CMakeFiles/cronus_core.dir/auto_partition.cc.o.d"
  "/root/repo/src/core/dispatcher.cc" "src/core/CMakeFiles/cronus_core.dir/dispatcher.cc.o" "gcc" "src/core/CMakeFiles/cronus_core.dir/dispatcher.cc.o.d"
  "/root/repo/src/core/enclave_runtime.cc" "src/core/CMakeFiles/cronus_core.dir/enclave_runtime.cc.o" "gcc" "src/core/CMakeFiles/cronus_core.dir/enclave_runtime.cc.o.d"
  "/root/repo/src/core/manifest.cc" "src/core/CMakeFiles/cronus_core.dir/manifest.cc.o" "gcc" "src/core/CMakeFiles/cronus_core.dir/manifest.cc.o.d"
  "/root/repo/src/core/micro_enclave.cc" "src/core/CMakeFiles/cronus_core.dir/micro_enclave.cc.o" "gcc" "src/core/CMakeFiles/cronus_core.dir/micro_enclave.cc.o.d"
  "/root/repo/src/core/pipe.cc" "src/core/CMakeFiles/cronus_core.dir/pipe.cc.o" "gcc" "src/core/CMakeFiles/cronus_core.dir/pipe.cc.o.d"
  "/root/repo/src/core/srpc.cc" "src/core/CMakeFiles/cronus_core.dir/srpc.cc.o" "gcc" "src/core/CMakeFiles/cronus_core.dir/srpc.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/cronus_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/cronus_core.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mos/CMakeFiles/cronus_mos.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cronus_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/cronus_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cronus_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cronus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cronus_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
