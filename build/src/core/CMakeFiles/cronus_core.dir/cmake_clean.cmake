file(REMOVE_RECURSE
  "CMakeFiles/cronus_core.dir/attestation.cc.o"
  "CMakeFiles/cronus_core.dir/attestation.cc.o.d"
  "CMakeFiles/cronus_core.dir/auto_partition.cc.o"
  "CMakeFiles/cronus_core.dir/auto_partition.cc.o.d"
  "CMakeFiles/cronus_core.dir/dispatcher.cc.o"
  "CMakeFiles/cronus_core.dir/dispatcher.cc.o.d"
  "CMakeFiles/cronus_core.dir/enclave_runtime.cc.o"
  "CMakeFiles/cronus_core.dir/enclave_runtime.cc.o.d"
  "CMakeFiles/cronus_core.dir/manifest.cc.o"
  "CMakeFiles/cronus_core.dir/manifest.cc.o.d"
  "CMakeFiles/cronus_core.dir/micro_enclave.cc.o"
  "CMakeFiles/cronus_core.dir/micro_enclave.cc.o.d"
  "CMakeFiles/cronus_core.dir/pipe.cc.o"
  "CMakeFiles/cronus_core.dir/pipe.cc.o.d"
  "CMakeFiles/cronus_core.dir/srpc.cc.o"
  "CMakeFiles/cronus_core.dir/srpc.cc.o.d"
  "CMakeFiles/cronus_core.dir/system.cc.o"
  "CMakeFiles/cronus_core.dir/system.cc.o.d"
  "libcronus_core.a"
  "libcronus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
