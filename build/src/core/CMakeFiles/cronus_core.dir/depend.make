# Empty dependencies file for cronus_core.
# This may be replaced when dependencies are built.
