file(REMOVE_RECURSE
  "libcronus_core.a"
)
