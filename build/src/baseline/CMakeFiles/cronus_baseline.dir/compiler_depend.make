# Empty compiler generated dependencies file for cronus_baseline.
# This may be replaced when dependencies are built.
