file(REMOVE_RECURSE
  "CMakeFiles/cronus_baseline.dir/cronus_backend.cc.o"
  "CMakeFiles/cronus_baseline.dir/cronus_backend.cc.o.d"
  "CMakeFiles/cronus_baseline.dir/hix_tz.cc.o"
  "CMakeFiles/cronus_baseline.dir/hix_tz.cc.o.d"
  "CMakeFiles/cronus_baseline.dir/monolithic_tz.cc.o"
  "CMakeFiles/cronus_baseline.dir/monolithic_tz.cc.o.d"
  "CMakeFiles/cronus_baseline.dir/native.cc.o"
  "CMakeFiles/cronus_baseline.dir/native.cc.o.d"
  "libcronus_baseline.a"
  "libcronus_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronus_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
