file(REMOVE_RECURSE
  "libcronus_baseline.a"
)
