file(REMOVE_RECURSE
  "CMakeFiles/cronus_workloads.dir/dnn.cc.o"
  "CMakeFiles/cronus_workloads.dir/dnn.cc.o.d"
  "CMakeFiles/cronus_workloads.dir/failover.cc.o"
  "CMakeFiles/cronus_workloads.dir/failover.cc.o.d"
  "CMakeFiles/cronus_workloads.dir/rodinia.cc.o"
  "CMakeFiles/cronus_workloads.dir/rodinia.cc.o.d"
  "CMakeFiles/cronus_workloads.dir/sharing.cc.o"
  "CMakeFiles/cronus_workloads.dir/sharing.cc.o.d"
  "CMakeFiles/cronus_workloads.dir/tvm.cc.o"
  "CMakeFiles/cronus_workloads.dir/tvm.cc.o.d"
  "CMakeFiles/cronus_workloads.dir/vta_bench.cc.o"
  "CMakeFiles/cronus_workloads.dir/vta_bench.cc.o.d"
  "libcronus_workloads.a"
  "libcronus_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronus_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
