file(REMOVE_RECURSE
  "libcronus_workloads.a"
)
