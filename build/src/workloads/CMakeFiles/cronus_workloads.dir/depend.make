# Empty dependencies file for cronus_workloads.
# This may be replaced when dependencies are built.
