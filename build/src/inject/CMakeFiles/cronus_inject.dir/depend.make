# Empty dependencies file for cronus_inject.
# This may be replaced when dependencies are built.
