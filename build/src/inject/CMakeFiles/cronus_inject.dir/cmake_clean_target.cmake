file(REMOVE_RECURSE
  "libcronus_inject.a"
)
