file(REMOVE_RECURSE
  "CMakeFiles/cronus_inject.dir/fault_plan.cc.o"
  "CMakeFiles/cronus_inject.dir/fault_plan.cc.o.d"
  "CMakeFiles/cronus_inject.dir/injector.cc.o"
  "CMakeFiles/cronus_inject.dir/injector.cc.o.d"
  "CMakeFiles/cronus_inject.dir/invariant_auditor.cc.o"
  "CMakeFiles/cronus_inject.dir/invariant_auditor.cc.o.d"
  "libcronus_inject.a"
  "libcronus_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronus_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
