file(REMOVE_RECURSE
  "libcronus_base.a"
)
