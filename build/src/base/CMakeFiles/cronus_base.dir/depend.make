# Empty dependencies file for cronus_base.
# This may be replaced when dependencies are built.
