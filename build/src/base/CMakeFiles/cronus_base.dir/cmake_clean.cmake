file(REMOVE_RECURSE
  "CMakeFiles/cronus_base.dir/bytes.cc.o"
  "CMakeFiles/cronus_base.dir/bytes.cc.o.d"
  "CMakeFiles/cronus_base.dir/json.cc.o"
  "CMakeFiles/cronus_base.dir/json.cc.o.d"
  "CMakeFiles/cronus_base.dir/logging.cc.o"
  "CMakeFiles/cronus_base.dir/logging.cc.o.d"
  "CMakeFiles/cronus_base.dir/rng.cc.o"
  "CMakeFiles/cronus_base.dir/rng.cc.o.d"
  "CMakeFiles/cronus_base.dir/stats.cc.o"
  "CMakeFiles/cronus_base.dir/stats.cc.o.d"
  "CMakeFiles/cronus_base.dir/status.cc.o"
  "CMakeFiles/cronus_base.dir/status.cc.o.d"
  "libcronus_base.a"
  "libcronus_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronus_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
