# Empty dependencies file for cronus_hw.
# This may be replaced when dependencies are built.
