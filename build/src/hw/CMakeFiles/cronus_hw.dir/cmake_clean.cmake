file(REMOVE_RECURSE
  "CMakeFiles/cronus_hw.dir/device_tree.cc.o"
  "CMakeFiles/cronus_hw.dir/device_tree.cc.o.d"
  "CMakeFiles/cronus_hw.dir/page_table.cc.o"
  "CMakeFiles/cronus_hw.dir/page_table.cc.o.d"
  "CMakeFiles/cronus_hw.dir/phys_memory.cc.o"
  "CMakeFiles/cronus_hw.dir/phys_memory.cc.o.d"
  "CMakeFiles/cronus_hw.dir/platform.cc.o"
  "CMakeFiles/cronus_hw.dir/platform.cc.o.d"
  "CMakeFiles/cronus_hw.dir/pmp.cc.o"
  "CMakeFiles/cronus_hw.dir/pmp.cc.o.d"
  "CMakeFiles/cronus_hw.dir/root_of_trust.cc.o"
  "CMakeFiles/cronus_hw.dir/root_of_trust.cc.o.d"
  "CMakeFiles/cronus_hw.dir/smmu.cc.o"
  "CMakeFiles/cronus_hw.dir/smmu.cc.o.d"
  "CMakeFiles/cronus_hw.dir/tzasc.cc.o"
  "CMakeFiles/cronus_hw.dir/tzasc.cc.o.d"
  "libcronus_hw.a"
  "libcronus_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronus_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
