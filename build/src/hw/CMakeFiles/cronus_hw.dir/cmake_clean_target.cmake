file(REMOVE_RECURSE
  "libcronus_hw.a"
)
