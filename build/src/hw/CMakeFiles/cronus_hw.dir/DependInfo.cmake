
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/device_tree.cc" "src/hw/CMakeFiles/cronus_hw.dir/device_tree.cc.o" "gcc" "src/hw/CMakeFiles/cronus_hw.dir/device_tree.cc.o.d"
  "/root/repo/src/hw/page_table.cc" "src/hw/CMakeFiles/cronus_hw.dir/page_table.cc.o" "gcc" "src/hw/CMakeFiles/cronus_hw.dir/page_table.cc.o.d"
  "/root/repo/src/hw/phys_memory.cc" "src/hw/CMakeFiles/cronus_hw.dir/phys_memory.cc.o" "gcc" "src/hw/CMakeFiles/cronus_hw.dir/phys_memory.cc.o.d"
  "/root/repo/src/hw/platform.cc" "src/hw/CMakeFiles/cronus_hw.dir/platform.cc.o" "gcc" "src/hw/CMakeFiles/cronus_hw.dir/platform.cc.o.d"
  "/root/repo/src/hw/pmp.cc" "src/hw/CMakeFiles/cronus_hw.dir/pmp.cc.o" "gcc" "src/hw/CMakeFiles/cronus_hw.dir/pmp.cc.o.d"
  "/root/repo/src/hw/root_of_trust.cc" "src/hw/CMakeFiles/cronus_hw.dir/root_of_trust.cc.o" "gcc" "src/hw/CMakeFiles/cronus_hw.dir/root_of_trust.cc.o.d"
  "/root/repo/src/hw/smmu.cc" "src/hw/CMakeFiles/cronus_hw.dir/smmu.cc.o" "gcc" "src/hw/CMakeFiles/cronus_hw.dir/smmu.cc.o.d"
  "/root/repo/src/hw/tzasc.cc" "src/hw/CMakeFiles/cronus_hw.dir/tzasc.cc.o" "gcc" "src/hw/CMakeFiles/cronus_hw.dir/tzasc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/cronus_base.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cronus_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
