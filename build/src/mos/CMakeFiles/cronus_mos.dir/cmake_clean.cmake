file(REMOVE_RECURSE
  "CMakeFiles/cronus_mos.dir/cpu_hal.cc.o"
  "CMakeFiles/cronus_mos.dir/cpu_hal.cc.o.d"
  "CMakeFiles/cronus_mos.dir/gpu_hal.cc.o"
  "CMakeFiles/cronus_mos.dir/gpu_hal.cc.o.d"
  "CMakeFiles/cronus_mos.dir/npu_hal.cc.o"
  "CMakeFiles/cronus_mos.dir/npu_hal.cc.o.d"
  "CMakeFiles/cronus_mos.dir/shim_kernel.cc.o"
  "CMakeFiles/cronus_mos.dir/shim_kernel.cc.o.d"
  "libcronus_mos.a"
  "libcronus_mos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronus_mos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
