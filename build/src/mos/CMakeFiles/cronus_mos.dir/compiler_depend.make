# Empty compiler generated dependencies file for cronus_mos.
# This may be replaced when dependencies are built.
