
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mos/cpu_hal.cc" "src/mos/CMakeFiles/cronus_mos.dir/cpu_hal.cc.o" "gcc" "src/mos/CMakeFiles/cronus_mos.dir/cpu_hal.cc.o.d"
  "/root/repo/src/mos/gpu_hal.cc" "src/mos/CMakeFiles/cronus_mos.dir/gpu_hal.cc.o" "gcc" "src/mos/CMakeFiles/cronus_mos.dir/gpu_hal.cc.o.d"
  "/root/repo/src/mos/npu_hal.cc" "src/mos/CMakeFiles/cronus_mos.dir/npu_hal.cc.o" "gcc" "src/mos/CMakeFiles/cronus_mos.dir/npu_hal.cc.o.d"
  "/root/repo/src/mos/shim_kernel.cc" "src/mos/CMakeFiles/cronus_mos.dir/shim_kernel.cc.o" "gcc" "src/mos/CMakeFiles/cronus_mos.dir/shim_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tee/CMakeFiles/cronus_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/cronus_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cronus_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cronus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cronus_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
