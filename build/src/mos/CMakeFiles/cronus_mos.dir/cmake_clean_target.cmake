file(REMOVE_RECURSE
  "libcronus_mos.a"
)
