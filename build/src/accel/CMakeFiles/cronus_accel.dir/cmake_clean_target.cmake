file(REMOVE_RECURSE
  "libcronus_accel.a"
)
