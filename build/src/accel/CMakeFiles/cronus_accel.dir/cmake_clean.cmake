file(REMOVE_RECURSE
  "CMakeFiles/cronus_accel.dir/builtin_kernels.cc.o"
  "CMakeFiles/cronus_accel.dir/builtin_kernels.cc.o.d"
  "CMakeFiles/cronus_accel.dir/cpu.cc.o"
  "CMakeFiles/cronus_accel.dir/cpu.cc.o.d"
  "CMakeFiles/cronus_accel.dir/gpu.cc.o"
  "CMakeFiles/cronus_accel.dir/gpu.cc.o.d"
  "CMakeFiles/cronus_accel.dir/npu.cc.o"
  "CMakeFiles/cronus_accel.dir/npu.cc.o.d"
  "libcronus_accel.a"
  "libcronus_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cronus_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
