
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/builtin_kernels.cc" "src/accel/CMakeFiles/cronus_accel.dir/builtin_kernels.cc.o" "gcc" "src/accel/CMakeFiles/cronus_accel.dir/builtin_kernels.cc.o.d"
  "/root/repo/src/accel/cpu.cc" "src/accel/CMakeFiles/cronus_accel.dir/cpu.cc.o" "gcc" "src/accel/CMakeFiles/cronus_accel.dir/cpu.cc.o.d"
  "/root/repo/src/accel/gpu.cc" "src/accel/CMakeFiles/cronus_accel.dir/gpu.cc.o" "gcc" "src/accel/CMakeFiles/cronus_accel.dir/gpu.cc.o.d"
  "/root/repo/src/accel/npu.cc" "src/accel/CMakeFiles/cronus_accel.dir/npu.cc.o" "gcc" "src/accel/CMakeFiles/cronus_accel.dir/npu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/cronus_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cronus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/cronus_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
