# Empty dependencies file for cronus_accel.
# This may be replaced when dependencies are built.
