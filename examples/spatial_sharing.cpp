/**
 * @file
 * Spatial sharing demo (Fig. 11a): LeNet trainers in 1/2/4
 * mEnclaves sharing one GPU.
 */

#include <cstdio>

#include "workloads/sharing.hh"

using namespace cronus;
using namespace cronus::workloads;

int
main()
{
    std::printf("%-9s %14s %9s\n", "enclaves", "images/sec",
                "gain");
    double base = 0.0;
    for (uint32_t enclaves : {1u, 2u, 4u}) {
        SpatialConfig config;
        config.enclaves = enclaves;
        auto result = runSpatialSharing(config);
        if (!result.isOk()) {
            std::printf("run failed: %s\n",
                        result.status().toString().c_str());
            return 1;
        }
        if (enclaves == 1)
            base = result.value().imagesPerSecond;
        std::printf("%-9u %14.0f %8.1f%%\n", enclaves,
                    result.value().imagesPerSecond,
                    100.0 * (result.value().imagesPerSecond / base -
                             1.0));
    }
    std::printf("spatial_sharing OK\n");
    return 0;
}
