/**
 * @file
 * NPU inference example: TVM-compiled models running in a CRONUS
 * NPU mEnclave, with a CPU fallback for comparison (Fig. 10b).
 */

#include <cstdio>

#include "baseline/cronus_backend.hh"
#include "workloads/tvm.hh"

using namespace cronus;
using namespace cronus::workloads;

int
main()
{
    Logger::instance().setQuiet(true);

    baseline::CronusBackendConfig cfg;
    baseline::CronusBackend cronus(cfg);

    std::printf("%-10s %14s %14s\n", "model", "npu (ms)",
                "cpu (ms)");
    for (const TvmModel &model :
         {tvmResnet18(), tvmResnet50(), tvmYolov3()}) {
        auto npu = runInferenceNpu(cronus, model);
        auto cpu = runInferenceCpu(cronus, model);
        if (!npu.isOk() || !cpu.isOk()) {
            std::printf("inference failed\n");
            return 1;
        }
        std::printf("%-10s %14.2f %14.2f  %s\n", model.name.c_str(),
                    npu.value().latencyNs / 1e6,
                    cpu.value().latencyNs / 1e6,
                    npu.value().verified ? "(verified)"
                                         : "(MISMATCH)");
    }
    std::printf("npu_inference OK\n");
    return 0;
}
