/**
 * @file
 * DNN training example: PyTorch-style LeNet training protected by
 * CRONUS, compared against native (unprotected) execution.
 */

#include <cstdio>

#include "baseline/cronus_backend.hh"
#include "baseline/native.hh"
#include "workloads/dnn.hh"

using namespace cronus;
using namespace cronus::workloads;

int
main()
{
    Logger::instance().setQuiet(true);
    registerDnnKernels();

    TrainConfig config;
    config.batchSize = 32;
    config.iterations = 6;

    baseline::NativeConfig native_cfg;
    native_cfg.gpuKernels = dnnKernelNames();
    baseline::NativeBackend native(native_cfg);

    baseline::CronusBackendConfig cronus_cfg;
    cronus_cfg.gpuKernels = dnnKernelNames();
    baseline::CronusBackend cronus(cronus_cfg);

    std::printf("%-10s %-10s %14s %14s %9s\n", "model", "dataset",
                "native it(us)", "cronus it(us)", "overhead");
    struct Job
    {
        ModelSpec model;
        DatasetSpec dataset;
    };
    for (const Job &job :
         {Job{lenet2(), mnist()}, Job{resnet50(), cifar10()}}) {
        auto n = trainModel(native, job.model, job.dataset, config);
        auto c = trainModel(cronus, job.model, job.dataset, config);
        if (!n.isOk() || !c.isOk()) {
            std::printf("training failed\n");
            return 1;
        }
        double overhead = 100.0 * (double(c.value().perIterationNs) /
                                       n.value().perIterationNs -
                                   1.0);
        std::printf("%-10s %-10s %14.1f %14.1f %8.1f%%\n",
                    job.model.name.c_str(),
                    job.dataset.name.c_str(),
                    n.value().perIterationNs / 1000.0,
                    c.value().perIterationNs / 1000.0, overhead);
    }
    std::printf("dnn_training OK\n");
    return 0;
}
