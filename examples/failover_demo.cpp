/**
 * @file
 * Failover demo (Fig. 9): two matrix tasks on separate partitions;
 * one partition is crashed mid-run and recovered with the
 * proceed-trap protocol while the other keeps computing.
 */

#include <cstdio>

#include "workloads/failover.hh"

using namespace cronus;
using namespace cronus::workloads;

namespace
{

void
printTimeline(const char *name, const std::vector<double> &rates,
              SimTime bucket_ns)
{
    std::printf("%-7s |", name);
    double peak = 1.0;
    for (double r : rates)
        peak = std::max(peak, r);
    for (double r : rates) {
        int level = static_cast<int>(8.0 * r / peak);
        const char *glyphs[] = {" ", ".", ":", "-", "=",
                                "+", "*", "#", "#"};
        std::printf("%s", glyphs[level]);
    }
    std::printf("|  (one column = %llu ms)\n",
                static_cast<unsigned long long>(bucket_ns /
                                                kNsPerMs));
}

} // namespace

int
main()
{
    FailoverConfig config;
    auto timeline = runFailoverTimeline(config);
    if (!timeline.isOk()) {
        std::printf("failover run failed: %s\n",
                    timeline.status().toString().c_str());
        return 1;
    }
    const FailoverTimeline &t = timeline.value();

    std::printf("two matrix tasks, crash of task A's partition at "
                "t=%llu ms\n\n",
                static_cast<unsigned long long>(config.crashAtNs /
                                                kNsPerMs));
    printTimeline("task A", t.taskARate, config.bucketNs);
    printTimeline("task B", t.taskBRate, config.bucketNs);

    std::printf("\npartition recovery: %.0f ms "
                "(machine reboot comparator: %.0f s)\n",
                t.recoveryNs / double(kNsPerMs),
                t.machineRebootNs / double(kNsPerSec));
    std::printf("task B steps completed during the outage: %llu\n",
                static_cast<unsigned long long>(
                    t.taskBStepsDuringOutage));
    std::printf("failover_demo OK\n");
    return 0;
}
