/**
 * @file
 * Automatic partitioning example (§V-B).
 *
 * A developer writes one *monolithic* enclave program that mixes
 * CPU work with CUDA calls. CRONUS's partitioner splits it into a
 * CPU mEnclave and a CUDA mEnclave, generates their manifests
 * (deriving the sRPC sync/async flags from call semantics), and
 * converts every device call into an mEnclave RPC -- with no
 * application changes.
 */

#include <cstdio>
#include <cstring>

#include "accel/builtin_kernels.hh"
#include "core/auto_partition.hh"

using namespace cronus;
using namespace cronus::core;

int
main()
{
    Logger::instance().setQuiet(true);
    accel::registerBuiltinKernels();
    CpuFunctionRegistry::instance().registerFunction(
        "postprocess", [](CpuCallContext &ctx) {
            ctx.charge(500);
            /* Average the floats handed back from the GPU. */
            const float *vals = reinterpret_cast<const float *>(
                ctx.args.data());
            size_t n = ctx.args.size() / sizeof(float);
            float sum = 0;
            for (size_t i = 0; i < n; ++i)
                sum += vals[i];
            float mean = n ? sum / n : 0.0f;
            Bytes out(sizeof(float));
            std::memcpy(out.data(), &mean, sizeof(float));
            return Result<Bytes>(out);
        });

    /* The monolithic program, as the developer wrote it. */
    MonolithicProgram program;
    program.name = "meanfill";
    program.cpuImage.exports = {"postprocess"};
    program.gpuImage =
        accel::GpuModuleImage{"meanfill.cubin", {"fill_f32"}};

    uint64_t va = 0x10000000;  /* first allocation in a fresh ctx */
    float three = 3.0f;
    uint32_t bits;
    std::memcpy(&bits, &three, 4);
    program.ops.push_back({MonoOp::Kind::Cuda, "cuMemAlloc",
                           CudaRuntime::encodeMemAlloc(64)});
    program.ops.push_back(
        {MonoOp::Kind::Cuda, "cuLaunchKernel",
         CudaRuntime::encodeLaunchKernel("fill_f32", {va, 16, bits},
                                         16)});
    program.ops.push_back({MonoOp::Kind::Cuda, "cuMemcpyDtoH",
                           CudaRuntime::encodeMemcpyDtoH(va, 64)});

    /* 1. The partitioner's analysis. */
    auto plan = AutoPartitioner::partition(program);
    if (!plan.isOk()) {
        std::printf("partitioning failed\n");
        return 1;
    }
    std::printf("plan: cpu=%s gpu=%s npu=%s\n",
                plan.value().needsCpu ? "yes" : "no",
                plan.value().needsGpu ? "yes" : "no",
                plan.value().needsNpu ? "yes" : "no");
    auto gpu_manifest =
        Manifest::fromJson(plan.value().gpuManifest).value();
    std::printf("generated CUDA manifest: %zu mECalls, "
                "cuLaunchKernel async=%s\n",
                gpu_manifest.mEcalls.size(),
                gpu_manifest.isAsync("cuLaunchKernel") ? "true"
                                                       : "false");

    /* 2. Execute via generated mEnclaves + sRPC. */
    CronusSystem system;
    auto result = AutoPartitioner::run(system, program);
    if (!result.isOk()) {
        std::printf("run failed: %s\n",
                    result.status().toString().c_str());
        return 1;
    }
    const float *filled = reinterpret_cast<const float *>(
        result.value().outputs[2].data());
    std::printf("GPU filled: [%.0f %.0f ... ] (16 lanes)\n",
                filled[0], filled[1]);
    std::printf("device calls streamed over sRPC: %llu\n",
                static_cast<unsigned long long>(
                    result.value().gpuStats.executed));

    /* 3. The monolithic program's CPU stage runs on the output. */
    program.ops.push_back({MonoOp::Kind::Cpu, "postprocess",
                           result.value().outputs[2]});
    auto with_cpu = AutoPartitioner::run(system, program);
    if (!with_cpu.isOk()) {
        std::printf("second run failed: %s\n",
                    with_cpu.status().toString().c_str());
        return 1;
    }
    float mean;
    std::memcpy(&mean, with_cpu.value().outputs[3].data(),
                sizeof(float));
    std::printf("CPU mEnclave postprocess mean = %.1f\n", mean);
    std::printf("auto_partition OK\n");
    return 0;
}
