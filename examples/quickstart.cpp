/**
 * @file
 * Quickstart: boot a CRONUS machine, attest a CPU mEnclave, create
 * a CUDA mEnclave and stream GPU work to it over sRPC.
 *
 * This walks the paper's Fig. 2 application lifecycle end to end.
 */

#include <cstdio>

#include "accel/builtin_kernels.hh"
#include "core/auto_partition.hh"
#include "core/system.hh"

using namespace cronus;
using namespace cronus::core;

namespace
{

Bytes
cpuImage()
{
    CpuFunctionRegistry::instance().registerFunction(
        "process", [](CpuCallContext &ctx) {
            ctx.charge(100);
            Bytes out = ctx.args;
            for (auto &b : out)
                b ^= 0x42;  /* stand-in for data processing */
            return Result<Bytes>(out);
        });
    CpuImage image;
    image.exports = {"process"};
    return image.serialize();
}

std::string
manifestFor(const std::string &device, const std::string &image_name,
            const Bytes &image, const std::vector<McallDecl> &calls)
{
    Manifest m;
    m.deviceType = device;
    if (!image_name.empty())
        m.images[image_name] =
            crypto::digestHex(crypto::sha256(image));
    m.mEcalls = calls;
    m.memoryBytes = 4ull << 20;
    return m.toJson();
}

} // namespace

int
main()
{
    Logger::instance().setQuiet(true);
    accel::registerBuiltinKernels();

    /* 1. Boot a machine: CPU + GPU + NPU, one partition each. */
    CronusSystem system;
    std::printf("booted: %zu partitions (one per device)\n",
                system.spm().partitionCount());

    /* 2. The application creates its CPU mEnclave (mEnclave A). */
    Bytes cpu_image = cpuImage();
    auto enclave_a = system.createEnclave(
        manifestFor("cpu", "app.so", cpu_image,
                    {{"process", false}}),
        "app.so", cpu_image);
    if (!enclave_a.isOk()) {
        std::printf("create failed: %s\n",
                    enclave_a.status().toString().c_str());
        return 1;
    }

    /* 3. The user remote-attests mEnclave A before sending data. */
    Bytes challenge = toBytes("user-nonce-1");
    auto report = system.attest(enclave_a.value(), challenge);
    auto expect = system.expectationFor(enclave_a.value());
    expect.challenge = challenge;
    Status verdict = verifyAttestation(report.value(), expect);
    std::printf("remote attestation: %s\n",
                verdict.isOk() ? "VERIFIED" : "REJECTED");

    /* 4. Sensitive data is processed inside the enclave. */
    auto processed = system.ecall(enclave_a.value(), "process",
                                  toBytes("sensitive-user-data"));
    std::printf("mECall returned %zu bytes\n",
                processed.value().size());

    /* 5. mEnclave A creates a CUDA mEnclave (mEnclave C) and
     * connects via streaming RPC. */
    accel::GpuModuleImage module{"app.cubin", {"vec_add_f32"}};
    Bytes gpu_image = module.serialize();
    std::vector<McallDecl> cuda_calls;
    for (const auto &fn : CudaRuntime::apiSurface())
        cuda_calls.push_back(
            {fn, AutoPartitioner::cudaCallIsAsync(fn)});
    auto enclave_c = system.createEnclave(
        manifestFor("gpu", "app.cubin", gpu_image, cuda_calls),
        "app.cubin", gpu_image);
    auto channel =
        system.connect(enclave_a.value(), enclave_c.value());
    std::printf("sRPC channel up (grant %llu)\n",
                static_cast<unsigned long long>(
                    channel.value()->grantId()));

    /* 6. Stream a GPU computation: c = a + b. */
    auto alloc = [&](uint64_t n) {
        auto r = channel.value()->callSync(
            "cuMemAlloc", CudaRuntime::encodeMemAlloc(n));
        return CudaRuntime::decodeU64Result(r.value()).value();
    };
    uint64_t va_a = alloc(16), va_b = alloc(16), va_c = alloc(16);

    std::vector<float> a = {1, 2, 3, 4}, b = {10, 20, 30, 40};
    Bytes a_bytes(reinterpret_cast<uint8_t *>(a.data()),
                  reinterpret_cast<uint8_t *>(a.data()) + 16);
    Bytes b_bytes(reinterpret_cast<uint8_t *>(b.data()),
                  reinterpret_cast<uint8_t *>(b.data()) + 16);
    channel.value()->call("cuMemcpyHtoD",
                          CudaRuntime::encodeMemcpyHtoD(va_a,
                                                        a_bytes));
    channel.value()->call("cuMemcpyHtoD",
                          CudaRuntime::encodeMemcpyHtoD(va_b,
                                                        b_bytes));
    channel.value()->call(
        "cuLaunchKernel",
        CudaRuntime::encodeLaunchKernel("vec_add_f32",
                                        {va_a, va_b, va_c, 4}, 4));
    auto out = channel.value()->call(
        "cuMemcpyDtoH", CudaRuntime::encodeMemcpyDtoH(va_c, 16));

    const float *c =
        reinterpret_cast<const float *>(out.value().data());
    std::printf("gpu result: [%.0f %.0f %.0f %.0f]\n", c[0], c[1],
                c[2], c[3]);
    std::printf("world switches for %llu streamed RPCs: %llu "
                "(setup only)\n",
                static_cast<unsigned long long>(
                    channel.value()->stats().executed),
                static_cast<unsigned long long>(
                    channel.value()->stats().setupWorldSwitches));
    channel.value()->close();

    std::printf("quickstart OK\n");
    return 0;
}
